"""Deterministic, seedable fault injection for the provenance stack.

The fault-tolerance machinery of the server, the client, the planner and
the parallel executor is only trustworthy if it can be *driven*: every
recovery path needs a way to make the fault it recovers from happen on
demand, deterministically, in-process and under CI.  This package is that
switchboard.

Named **injection points** are threaded through the layers that touch an
unreliable resource (sockets, worker pools, SQLite):

=========================  =====================================================
point                      where it fires
=========================  =====================================================
``store.connect``          :func:`repro.storage.database.connect`
``store.load_label_arrays``  the streaming label fetch workers and stores share
``pool.submit``            :meth:`repro.engine.pool.PersistentWorkerPool.submit`
``pool.task``              inside every cross-run chunk task (worker side)
``pushdown.sql``           :func:`repro.storage.pushdown.pushdown_sweep`
``routing.migrate``        :func:`repro.storage.routing.migrate_spec`, between
                           the copy commit and the routing flip
``server.read``            the daemon's frame-reader coroutine
``server.write``           the daemon's frame-writer
``client.send``            :class:`~repro.server.client.RemoteStore` request send
``client.recv``            :class:`~repro.server.client.RemoteStore` response read
=========================  =====================================================

A :class:`FaultPlan` binds **trigger rules** to points — "fail the Nth
call", "fail every Nth call", "fail with probability p under seed s" —
each with a fault *kind* choosing the raised exception:

* ``oserror`` — :class:`InjectedConnectionError` (an ``OSError``), the
  shape of a dropped socket;
* ``sql`` — :class:`InjectedOperationalError` (a
  :class:`sqlite3.OperationalError`), the shape of a locked or corrupt
  database;
* ``crash`` — :class:`~repro.exceptions.WorkerCrashError`, the shape of
  a pool worker dying mid-task.

Plans activate two ways: as a context manager (``with plan.active(): ...``)
for tests, or through the ``REPRO_FAULTS`` environment variable for whole
processes (the chaos CI leg; process-pool workers inherit it).  The spec
grammar::

    REPRO_FAULTS = clause (";" clause)*
    clause       = point ":" arg ("," arg)*
                 | "seed=" INT
                 | "chaos" [":" arg ("," arg)*]
    arg          = kind | "nth=" INT | "every=" INT | "p=" FLOAT
                 | "times=" INT | "once"
    kind         = "oserror" | "sql" | "crash"

e.g. ``REPRO_FAULTS="client.recv:oserror,nth=3;pool.task:crash,p=0.05;seed=7"``.
``chaos`` is shorthand for a profile over the *transparently recoverable*
points only (``client.send``, ``client.recv``, ``pool.task``) — the ones
whose recovery returns bit-identical answers with no caller-visible error —
so an entire test suite can run under it: ``REPRO_FAULTS="chaos:p=0.01,seed=42"``.

Everything is deterministic: probabilistic rules draw from a per-rule
:class:`random.Random` seeded from ``(seed, point, rule index)`` via CRC-32
(never from the process hash seed), and counter-based rules count calls per
rule.  :attr:`FaultPlan.fired` / :attr:`FaultPlan.calls` let tests assert a
fault actually triggered.  :func:`suppressed` masks every injection point
on the current thread — the sequential fallbacks use it so a degraded
retry cannot be re-failed by the very rule it is recovering from.
"""

from __future__ import annotations

import os
import random
import sqlite3
import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence
from zlib import crc32

from repro.exceptions import FaultSpecError, WorkerCrashError

__all__ = [
    "FAULT_POINTS",
    "CHAOS_POINTS",
    "FAULT_KINDS",
    "FaultRule",
    "FaultPlan",
    "InjectedConnectionError",
    "InjectedOperationalError",
    "fault_point",
    "parse_fault_spec",
    "suppressed",
    "active_plans",
]

#: every injection point wired through the stack (specs naming others fail fast)
FAULT_POINTS = frozenset(
    {
        "store.connect",
        "store.load_label_arrays",
        "pool.submit",
        "pool.task",
        "pushdown.sql",
        "routing.migrate",
        "server.read",
        "server.write",
        "client.send",
        "client.recv",
    }
)

#: the ``chaos`` profile: points whose recovery is transparent (the caller
#: sees bit-identical answers, never an error), so a whole test suite can
#: run under them — client transport faults ride the retry/reconnect
#: machinery, worker crashes ride the executor's retry-then-sequential path
CHAOS_POINTS: dict[str, str] = {
    "client.send": "oserror",
    "client.recv": "oserror",
    "pool.task": "crash",
}

FAULT_KINDS = ("oserror", "sql", "crash")


class InjectedConnectionError(ConnectionError):
    """An injected transport fault (an ``OSError``, like a dropped socket)."""


class InjectedOperationalError(sqlite3.OperationalError):
    """An injected SQL fault (a ``sqlite3.OperationalError``)."""


def _raise_fault(kind: str, point: str) -> None:
    message = f"injected fault at {point}"
    if kind == "oserror":
        raise InjectedConnectionError(message)
    if kind == "sql":
        raise InjectedOperationalError(message)
    raise WorkerCrashError(message)


class FaultRule:
    """One trigger rule: *when* a point fails and *how* it fails.

    Exactly one trigger may be given: ``nth`` (fail the Nth call only),
    ``every`` (fail every Nth call), ``p`` (fail each call with that
    probability, deterministically under the plan seed), or ``once``
    (sugar for ``nth=1``).  ``times`` caps total fires for ``every``/``p``
    rules.
    """

    def __init__(
        self,
        point: str,
        kind: str = "oserror",
        *,
        nth: Optional[int] = None,
        every: Optional[int] = None,
        p: Optional[float] = None,
        once: bool = False,
        times: Optional[int] = None,
    ) -> None:
        if point not in FAULT_POINTS:
            raise FaultSpecError(
                f"unknown fault point {point!r} (known: {sorted(FAULT_POINTS)})"
            )
        if kind not in FAULT_KINDS:
            raise FaultSpecError(f"unknown fault kind {kind!r} (known: {FAULT_KINDS})")
        if once:
            if nth is not None:
                raise FaultSpecError("'once' and 'nth' are mutually exclusive")
            nth = 1
        triggers = sum(value is not None for value in (nth, every, p))
        if triggers != 1:
            raise FaultSpecError(
                f"rule for {point!r} needs exactly one trigger "
                "(nth=N, every=N, p=F or once)"
            )
        if nth is not None and int(nth) < 1:
            raise FaultSpecError(f"nth must be >= 1, got {nth}")
        if every is not None and int(every) < 1:
            raise FaultSpecError(f"every must be >= 1, got {every}")
        if p is not None and not (0.0 <= float(p) <= 1.0):
            raise FaultSpecError(f"p must be in [0, 1], got {p}")
        if times is not None and int(times) < 1:
            raise FaultSpecError(f"times must be >= 1, got {times}")
        self.point = point
        self.kind = kind
        self.nth = int(nth) if nth is not None else None
        self.every = int(every) if every is not None else None
        self.p = float(p) if p is not None else None
        self.times = int(times) if times is not None else None
        # per-rule runtime state, (re)built by FaultPlan._bind
        self.calls = 0
        self.fires = 0
        self._rng: Optional[random.Random] = None

    def _bind(self, seed: int, index: int) -> None:
        """Reset counters and derive the rule's deterministic RNG stream."""
        self.calls = 0
        self.fires = 0
        # crc32, not hash(): str hashing is randomized per process, and a
        # plan must fire identically in every worker that inherits it
        self._rng = random.Random(
            (int(seed) * 1_000_003 + crc32(self.point.encode("utf-8")) + index)
            & 0xFFFFFFFF
        )

    def _should_fire(self) -> bool:
        """Called under the plan lock with ``calls`` already incremented."""
        if self.times is not None and self.fires >= self.times:
            return False
        if self.nth is not None:
            return self.calls == self.nth
        if self.every is not None:
            return self.calls % self.every == 0
        assert self._rng is not None  # _bind ran at plan construction
        return self._rng.random() < self.p

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        trigger = (
            f"nth={self.nth}"
            if self.nth is not None
            else f"every={self.every}"
            if self.every is not None
            else f"p={self.p}"
        )
        return f"FaultRule({self.point}:{self.kind},{trigger})"


class FaultPlan:
    """A seeded set of :class:`FaultRule` s, activatable as a unit.

    Thread-safe: one plan may be hit from the client thread, the server's
    store thread and pool workers at once; each rule's counters advance
    atomically, so "fail the Nth call" means the Nth call plan-wide.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), *, seed: int = 0) -> None:
        self.seed = int(seed)
        self.rules = list(rules)
        self._rules_of: dict[str, list[FaultRule]] = {}
        self._lock = threading.Lock()
        for index, rule in enumerate(self.rules):
            rule._bind(self.seed, index)
            self._rules_of.setdefault(rule.point, []).append(rule)

    # ------------------------------------------------------------------
    # observation (tests assert against these)
    # ------------------------------------------------------------------
    @property
    def calls(self) -> dict[str, int]:
        """Per-point count of injection-point passages while active."""
        counts: dict[str, int] = {}
        for point, rules in self._rules_of.items():
            counts[point] = max(rule.calls for rule in rules)
        return counts

    @property
    def fired(self) -> dict[str, int]:
        """Per-point count of faults actually raised."""
        counts: dict[str, int] = {}
        for point, rules in self._rules_of.items():
            total = sum(rule.fires for rule in rules)
            if total:
                counts[point] = total
        return counts

    def reset(self) -> None:
        """Rewind every rule to its initial (deterministic) state."""
        with self._lock:
            for index, rule in enumerate(self.rules):
                rule._bind(self.seed, index)

    # ------------------------------------------------------------------
    # the hook the injection points call
    # ------------------------------------------------------------------
    def check(self, point: str) -> None:
        """Raise the configured fault if a rule for *point* triggers."""
        rules = self._rules_of.get(point)
        if not rules:
            return
        for rule in rules:
            with self._lock:
                rule.calls += 1
                fire = rule._should_fire()
                if fire:
                    rule.fires += 1
            if fire:
                _raise_fault(rule.kind, point)

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    @contextmanager
    def active(self) -> Iterator["FaultPlan"]:
        """Activate the plan for every thread until the block exits."""
        _STACK.append(self)
        try:
            yield self
        finally:
            _STACK.remove(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, rules={self.rules!r})"


# ----------------------------------------------------------------------
# spec parsing (the REPRO_FAULTS grammar)
# ----------------------------------------------------------------------
def _parse_args(
    clause: str, items: Sequence[str]
) -> tuple[Optional[str], dict[str, object]]:
    kind: Optional[str] = None
    kwargs: dict[str, object] = {}
    for item in items:
        item = item.strip()
        if not item:
            continue
        if item in FAULT_KINDS:
            if kind is not None:
                raise FaultSpecError(f"two fault kinds in clause {clause!r}")
            kind = item
            continue
        if item == "once":
            kwargs["once"] = True
            continue
        key, sep, value = item.partition("=")
        if not sep:
            raise FaultSpecError(f"unparseable item {item!r} in clause {clause!r}")
        try:
            if key in ("nth", "every", "times"):
                kwargs[key] = int(value)
            elif key == "p":
                kwargs[key] = float(value)
            else:
                raise FaultSpecError(
                    f"unknown key {key!r} in clause {clause!r} "
                    "(known: nth, every, p, times, once)"
                )
        except ValueError:
            raise FaultSpecError(
                f"bad value {value!r} for {key!r} in clause {clause!r}"
            ) from None
    return kind, kwargs


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse one ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`."""
    rules: list[FaultRule] = []
    seed = 0
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            try:
                seed = int(clause[len("seed=") :])
            except ValueError:
                raise FaultSpecError(f"bad seed in clause {clause!r}") from None
            continue
        point, _, tail = clause.partition(":")
        point = point.strip()
        items = tail.split(",") if tail else []
        if point == "chaos":
            kind, kwargs = _parse_args(clause, items)
            if kind is not None:
                raise FaultSpecError(
                    "the chaos profile picks the kind per point; drop "
                    f"{kind!r} from {clause!r}"
                )
            if "seed" in kwargs:  # pragma: no cover - caught by unknown-key above
                raise FaultSpecError("use a 'seed=N' clause, not chaos:seed=N")
            if not any(key in kwargs for key in ("nth", "every", "p", "once")):
                kwargs["p"] = 0.01
            for chaos_point, chaos_kind in sorted(CHAOS_POINTS.items()):
                rules.append(FaultRule(chaos_point, chaos_kind, **kwargs))
            continue
        kind, kwargs = _parse_args(clause, items)
        rules.append(FaultRule(point, kind or "oserror", **kwargs))
    return FaultPlan(rules, seed=seed)


# ----------------------------------------------------------------------
# the process-global activation state
# ----------------------------------------------------------------------
#: explicitly activated plans (appended by FaultPlan.active); global, not
#: thread-local — the server's store thread and pool workers must see a
#: plan the test thread activated
_STACK: list[FaultPlan] = []


class _EnvPlan:
    """The lazily parsed ``REPRO_FAULTS`` plan, re-parsed when the var changes."""

    def __init__(self) -> None:
        self.spec: Optional[str] = None
        self.plan: Optional[FaultPlan] = None
        self._lock = threading.Lock()

    def current(self) -> Optional[FaultPlan]:
        spec = os.environ.get("REPRO_FAULTS")
        if spec == self.spec:
            return self.plan
        with self._lock:
            if spec != self.spec:
                self.plan = parse_fault_spec(spec) if spec else None
                self.spec = spec
        return self.plan


_ENV = _EnvPlan()

_SUPPRESSED = threading.local()


@contextmanager
def suppressed() -> Iterator[None]:
    """Mask every injection point on the current thread.

    The degradation fallbacks (a chunk re-run sequentially after its worker
    crashed) execute under this, so the rule that killed the first attempt
    cannot also kill the recovery — recovery paths must be able to assert
    bit-identical answers, not race the fault schedule.
    """
    depth = getattr(_SUPPRESSED, "depth", 0)
    _SUPPRESSED.depth = depth + 1
    try:
        yield
    finally:
        _SUPPRESSED.depth = depth


def active_plans() -> list[FaultPlan]:
    """Every plan a :func:`fault_point` call would consult right now."""
    plans: list[FaultPlan] = []
    env_plan = _ENV.current()
    if env_plan is not None:
        plans.append(env_plan)
    plans.extend(_STACK)
    return plans


def fault_point(name: str) -> None:
    """Declare one injection point; raises when an active rule triggers.

    The inactive fast path is one env read plus an empty-list check, so
    production code pays nothing measurable for carrying the hook.
    """
    if getattr(_SUPPRESSED, "depth", 0):
        return
    env_plan = _ENV.current()
    if env_plan is not None:
        env_plan.check(name)
    for plan in _STACK:
        plan.check(name)
