"""The asyncio provenance daemon: ``open_store`` behind a TCP socket.

:class:`ProvenanceServer` fronts one provenance store — single-file or
sharded, exactly what :func:`repro.storage.sharded.open_store` returns —
with the length-prefixed binary protocol of
:mod:`repro.server.protocol`.  The design follows three rules:

* **One store thread.**  The store's caches (label LRUs, compiled
  engines, adaptive promotion counters) are plain dicts with no locking,
  so every store operation — queries, ingest flushes, even opening the
  store when the server was given a path — runs on a single dedicated
  executor thread.  Concurrency across connections comes from asyncio
  interleaving at the request boundary, not from racing the caches;
  the parallel machinery *inside* an operation (per-shard ingest
  commits, cross-run worker pools) still fans out through the store's
  own persistent pools.
* **Per-connection session state.**  Each connection owns a
  :class:`~repro.api.ProvenanceSession` that lives as long as the
  connection, so adaptive point-query promotion and the store's compiled
  ``SpecKernel``/engine caches stay warm across requests — a monitoring
  client re-asking the same run pays compilation once, like an
  in-process session would.  Ingest requests buffer per connection and
  flush through ``add_labeled_runs`` (the sharded store's concurrent
  per-shard commit path) when the client asks or the buffer reaches
  ``ingest_flush_after``; whatever is still buffered at disconnect is
  flushed then.
* **Bounded inflight, clean drain.**  Each connection feeds a bounded
  queue read by one responder task; when the queue is full the reader
  coroutine stops pulling bytes, so overload turns into TCP backpressure
  instead of unbounded buffering.  Responses always leave in request
  order.  A malformed or truncated frame gets a ``STATUS_FATAL`` error
  frame and the connection closes; store-level errors
  (:class:`~repro.exceptions.ReproError`) are reported recoverably and
  the connection lives on.  :meth:`ProvenanceServer.stop` stops
  accepting, lets inflight requests finish (up to a grace period),
  flushes ingest buffers, and closes the store — draining its worker
  pools — before returning.

:class:`ServerThread` wraps the daemon in a background thread with its
own event loop for tests, examples and benches; the CLI's ``serve``
command runs :meth:`ProvenanceServer.serve_forever` in the foreground.
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from repro.faults import fault_point

from repro.api.queries import (
    BatchQuery,
    CrossRunBatchQuery,
    CrossRunQuery,
    DataDependencyQuery,
    DownstreamQuery,
    PointQuery,
    UpstreamQuery,
)
from repro.api.session import PROMOTE_AFTER_DEFAULT, ProvenanceSession
from repro.api.workload import decode_pair_workload
from repro.exceptions import ProtocolError, ReproError, StorageError
from repro.server import protocol as wire
from repro.server.protocol import Reader, Writer, frame

__all__ = [
    "ProvenanceServer",
    "ServerThread",
    "INGEST_FLUSH_AFTER_DEFAULT",
    "MAX_INFLIGHT_DEFAULT",
]

#: buffered ingest entries per connection before an automatic flush
INGEST_FLUSH_AFTER_DEFAULT = 32

#: queued (accepted but unanswered) requests per connection before the
#: reader stops pulling bytes off the socket
MAX_INFLIGHT_DEFAULT = 64

#: how long stop() waits for a connection's inflight requests to finish
DRAIN_GRACE_SECONDS = 10.0

#: committed ingest sequence tokens remembered per client — deep enough
#: that a reconnecting client can replay far more than one buffered batch
#: without the dedupe window having rolled over
INGEST_DEDUPE_SEQS = 4096

#: clients tracked in the dedupe map before the least recently seen one
#: is forgotten (a forgotten client's replays would re-commit; 64 covers
#: every realistic connection churn for a single daemon)
INGEST_DEDUPE_CLIENTS = 64


class _Connection:
    """Everything one TCP connection owns on the server side."""

    def __init__(self, session: ProvenanceSession) -> None:
        self.session = session
        #: buffered (seq, scheme, spec_json, run_json) ingest entries
        self.ingest_buffer: list[tuple[int, str, str, str]] = []
        #: labelers reused across this connection's ingest flushes
        self.labelers: dict[tuple[str, str], Any] = {}
        #: set once a fatal frame went out; later queue items are discarded
        self.dead = False
        #: the client's self-assigned id from the v3 HELLO ("" until then);
        #: keys the server-global ingest dedupe map, so entries replayed
        #: over a new connection after a mid-flush disconnect commit once
        self.client_id = ""


class ProvenanceServer:
    """Serve one provenance store over the binary wire protocol.

    Parameters
    ----------
    store:
        An already-open store (single-file or sharded).  The caller keeps
        ownership: :meth:`stop` will NOT close it.
    path / shards:
        Alternatively, where to ``open_store``.  The store is then opened
        lazily **on the store thread** and closed by :meth:`stop`.
    host / port:
        Bind address; port 0 picks a free port (see :attr:`address`).
    max_inflight / ingest_flush_after / promote_after:
        Backpressure bound, ingest buffer threshold, and the adaptive
        promotion threshold handed to each connection's session.
    """

    def __init__(
        self,
        store: Any = None,
        *,
        path: Any = None,
        shards: Optional[int] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = MAX_INFLIGHT_DEFAULT,
        ingest_flush_after: int = INGEST_FLUSH_AFTER_DEFAULT,
        promote_after: int = PROMOTE_AFTER_DEFAULT,
    ) -> None:
        if (store is None) == (path is None):
            raise ValueError("ProvenanceServer takes exactly one of store or path")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        if ingest_flush_after < 1:
            raise ValueError(
                f"ingest_flush_after must be positive, got {ingest_flush_after}"
            )
        self._store = store
        self._owns_store = store is None
        self._path = path
        self._shards = shards
        self.host = host
        self.port = port
        self.max_inflight = int(max_inflight)
        self.ingest_flush_after = int(ingest_flush_after)
        self.promote_after = int(promote_after)
        self._server: Optional[asyncio.base_events.Server] = None
        # every store operation runs here; see the module docstring
        self._store_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-server-store"
        )
        self._connections: set[
            tuple[asyncio.Queue, asyncio.StreamWriter, _Connection]
        ] = set()
        self._stopped = False
        # committed (client_id, seq) ingest tokens -> run_id; mutated only
        # on the store thread, so the disconnect-flush of a dying
        # connection and the replay arriving over its successor serialize
        # instead of racing (whichever runs first commits, the other
        # returns the recorded ids)
        self._ingest_seen: dict[str, OrderedDict[int, int]] = {}
        self._handlers = {
            wire.OP_HELLO: self._op_hello,
            wire.OP_POINT: self._op_point,
            wire.OP_BATCH: self._op_batch,
            wire.OP_BATCH_PAIRS: self._op_batch_pairs,
            wire.OP_SWEEP: self._op_sweep,
            wire.OP_CROSS_SWEEP: self._op_cross_sweep,
            wire.OP_CROSS_BATCH: self._op_cross_batch,
            wire.OP_DATA_DEP: self._op_data_dep,
            wire.OP_INGEST: self._op_ingest,
            wire.OP_FLUSH: self._op_flush,
            wire.OP_CACHE_STATS: self._op_cache_stats,
            wire.OP_STATISTICS: self._op_statistics,
            wire.OP_LIST_RUNS: self._op_list_runs,
            wire.OP_LIST_SPECS: self._op_list_specs,
            wire.OP_HEALTH: self._op_health,
            wire.OP_REBALANCE: self._op_rebalance,
            wire.OP_REPLICATE: self._op_replicate,
            wire.OP_ROUTING: self._op_routing,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _open_store(self) -> Any:
        """Resolve the store on the store thread (first use only)."""
        if self._store is None:
            from repro.storage.sharded import open_store

            self._store = open_store(self._path, shards=self._shards)
        return self._store

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._store_pool, self._open_store)
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    @property
    def url(self) -> str:
        return f"repro://{self.host}:{self.port}/"

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Stop accepting, drain inflight requests, release the store.

        Connections get :data:`DRAIN_GRACE_SECONDS` to finish queued
        requests (responses still go out), then their transports close.
        A server-owned store (opened from a path) is closed — which
        drains its persistent worker pools; a caller-provided store is
        left open for its owner.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for queue, writer, _ in list(self._connections):
            try:
                await asyncio.wait_for(queue.join(), timeout=DRAIN_GRACE_SECONDS)
            except asyncio.TimeoutError:
                pass
            writer.close()
        loop = asyncio.get_running_loop()
        # deterministic flush-or-reject for ingest still buffered at
        # shutdown: a disconnect racing stop() can leave the reader's eof
        # sentinel unprocessed when the queue drains (join() returns at
        # zero unfinished items *before* the sentinel is enqueued), and a
        # connection that never disconnected gets no sentinel at all —
        # either way the responder's own disconnect-flush would run after
        # the store thread is gone and silently drop the buffer.  Flushing
        # here, while the store thread is still alive, is double-flush
        # safe: _flush_ingest pops the buffer first and every flush
        # serializes on the single store thread.
        for _, _, state in list(self._connections):
            if state.ingest_buffer:
                try:
                    await loop.run_in_executor(
                        self._store_pool, self._flush_ingest, state
                    )
                except ReproError:
                    pass  # rejected deterministically (store-level error)
        if self._owns_store and self._store is not None:
            await loop.run_in_executor(self._store_pool, self._store.close)
        self._store_pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        state = _Connection(
            ProvenanceSession(self._store, promote_after=self.promote_after)
        )
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.max_inflight)
        record = (queue, writer, state)
        self._connections.add(record)
        responder = asyncio.create_task(self._respond_loop(queue, writer, state))
        fatal: Optional[ProtocolError] = None
        try:
            while True:
                # an injected connection fault here takes the (ConnectionError,
                # OSError) path below: the connection dies, buffered ingest
                # still flushes via the eof sentinel
                fault_point("server.read")
                try:
                    prefix = await reader.readexactly(4)
                except asyncio.IncompleteReadError as exc:
                    if exc.partial:
                        raise ProtocolError(
                            f"truncated frame length: got {len(exc.partial)} "
                            "of 4 prefix bytes"
                        ) from None
                    break  # clean EOF between frames
                length = wire.split_frame_length(prefix)
                try:
                    payload = await reader.readexactly(length)
                except asyncio.IncompleteReadError as exc:
                    raise ProtocolError(
                        f"truncated frame: announced {length} payload bytes, "
                        f"got {len(exc.partial)}"
                    ) from None
                # bounded inflight: when the responder is max_inflight
                # requests behind, this put blocks and the client sees
                # TCP backpressure instead of the server buffering forever
                await queue.put(payload)
        except ProtocolError as exc:
            fatal = exc
        except (ConnectionError, OSError):
            pass
        await queue.put(("fatal", fatal) if fatal is not None else ("eof", None))
        try:
            await responder
        finally:
            self._connections.discard(record)
            writer.close()

    async def _respond_loop(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter, state: _Connection
    ) -> None:
        """Answer queued requests in order; one task per connection."""
        loop = asyncio.get_running_loop()
        while True:
            item = await queue.get()
            try:
                if isinstance(item, tuple):
                    kind, exc = item
                    if kind == "fatal" and not state.dead:
                        await self._send(writer, _error_frame(wire.STATUS_FATAL, exc))
                    try:
                        # disconnect: whatever ingest the client buffered
                        # but never flushed is committed now, not dropped
                        await loop.run_in_executor(
                            self._store_pool, self._flush_ingest, state
                        )
                    except (RuntimeError, ReproError):
                        # the disconnect raced server shutdown: the store
                        # thread (or the store itself) is already gone
                        pass
                    return
                if state.dead:
                    continue  # fatal already reported; drain and discard
                response, fatal = await loop.run_in_executor(
                    self._store_pool, self._serve_one, state, item
                )
                await self._send(writer, response)
                if fatal:
                    state.dead = True
                    writer.close()
            except (ConnectionError, OSError):
                # the response cannot reach the client (peer gone, or an
                # injected server.write fault): close the transport so the
                # client sees EOF now instead of waiting out its timeout
                state.dead = True
                writer.close()
            finally:
                queue.task_done()

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, response: bytes) -> None:
        fault_point("server.write")
        writer.write(response)
        await writer.drain()

    # ------------------------------------------------------------------
    # dispatch (store thread)
    # ------------------------------------------------------------------
    def _serve_one(self, state: _Connection, payload: bytes) -> tuple[bytes, bool]:
        """Decode, execute and encode one request; returns (frame, fatal)."""
        try:
            reader = Reader(payload)
            opcode = reader.u8()
            handler = self._handlers.get(opcode)
            if handler is None:
                raise ProtocolError(f"unknown opcode {opcode}")
            body = handler(state, reader)
            return frame(bytes([wire.STATUS_OK]) + body), False
        except ProtocolError as exc:
            return _error_frame(wire.STATUS_FATAL, exc), True
        except ReproError as exc:
            return _error_frame(wire.STATUS_ERROR, exc), False
        except Exception as exc:  # noqa: BLE001 - report, don't kill the daemon
            return _error_frame(wire.STATUS_ERROR, exc), False

    # ------------------------------------------------------------------
    # op handlers (store thread; Reader is positioned past the opcode)
    # ------------------------------------------------------------------
    def _op_hello(self, state: _Connection, reader: Reader) -> bytes:
        client_version = reader.u32()
        # version is checked before the v3 client-id field is read, so a
        # v2 client's 4-byte body gets the mismatch message, not a
        # truncated-payload error
        if client_version != wire.PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: client speaks {client_version}, "
                f"server speaks {wire.PROTOCOL_VERSION}"
            )
        state.client_id = reader.str()
        reader.expect_end()
        writer = Writer()
        writer.put_u32(wire.PROTOCOL_VERSION)
        writer.put_str(str(self._store.path))
        writer.put_bool(hasattr(self._store, "shard_count"))
        return writer.getvalue()

    def _op_point(self, state: _Connection, reader: Reader) -> bytes:
        run_id = reader.i64()
        source = (reader.str(), reader.i64())
        target = (reader.str(), reader.i64())
        reader.expect_end()
        answer = state.session.run(PointQuery(source, target, run_id=run_id))
        return Writer().put_bool(answer).getvalue()

    def _op_batch(self, state: _Connection, reader: Reader) -> bytes:
        # the body IS a binary pair workload: magic + run-id header + two
        # LE int64 handle columns, straight off disk or a client array
        try:
            run_id, source_ids, target_ids = decode_pair_workload(reader.rest())
        except ReproError as exc:
            raise ProtocolError(f"bad batch body: {exc}") from None
        answers = state.session.run(
            BatchQuery(source_ids=source_ids, target_ids=target_ids, run_id=run_id)
        )
        return Writer().put_bools(answers).getvalue()

    def _op_batch_pairs(self, state: _Connection, reader: Reader) -> bytes:
        run_id = reader.i64()
        count = reader.u32()
        pairs = [
            ((reader.str(), reader.i64()), (reader.str(), reader.i64()))
            for _ in range(count)
        ]
        reader.expect_end()
        answers = state.session.run(BatchQuery(pairs=pairs, run_id=run_id))
        return Writer().put_bools(answers).getvalue()

    def _op_sweep(self, state: _Connection, reader: Reader) -> bytes:
        run_id = reader.i64()
        downstream = reader.bool()
        execution = (reader.str(), reader.i64())
        pushdown = wire.read_pushdown(reader)
        reader.expect_end()
        query = (
            DownstreamQuery(execution, run_id=run_id, pushdown=pushdown)
            if downstream
            else UpstreamQuery(execution, run_id=run_id, pushdown=pushdown)
        )
        return Writer().put_executions(state.session.run(query)).getvalue()

    def _op_cross_sweep(self, state: _Connection, reader: Reader) -> bytes:
        specification = reader.str()
        execution = (reader.str(), reader.i64())
        direction = "downstream" if reader.bool() else "upstream"
        workers = wire.read_workers(reader)
        pushdown = wire.read_pushdown(reader)
        reader.expect_end()
        result = state.session.run(
            CrossRunQuery(
                specification,
                execution,
                direction,
                workers=workers,
                pushdown=pushdown,
            )
        )
        writer = Writer()
        wire.put_run_map_executions(writer, result.per_run)
        wire.put_skipped(writer, result.skipped_runs)
        return writer.getvalue()

    def _op_cross_batch(self, state: _Connection, reader: Reader) -> bytes:
        specification = reader.str()
        count = reader.u32()
        pairs = [
            ((reader.str(), reader.i64()), (reader.str(), reader.i64()))
            for _ in range(count)
        ]
        workers = wire.read_workers(reader)
        reader.expect_end()
        result = state.session.run(
            CrossRunBatchQuery(specification, pairs, workers=workers)
        )
        writer = Writer()
        wire.put_run_map_bools(writer, result.per_run)
        wire.put_skipped(writer, result.skipped_runs)
        return writer.getvalue()

    def _op_data_dep(self, state: _Connection, reader: Reader) -> bytes:
        run_id = reader.i64()
        item = reader.str()
        on_module = reader.bool()
        if on_module:
            query = DataDependencyQuery(
                item, on_module=(reader.str(), reader.i64()), run_id=run_id
            )
        else:
            query = DataDependencyQuery(item, on_item=reader.str(), run_id=run_id)
        reader.expect_end()
        return Writer().put_bool(state.session.run(query)).getvalue()

    def _op_ingest(self, state: _Connection, reader: Reader) -> bytes:
        flush_requested = reader.bool()
        count = reader.u32()
        for _ in range(count):
            seq = reader.i64()
            state.ingest_buffer.append(
                (seq, reader.str(), reader.str(), reader.str())
            )
        reader.expect_end()
        run_ids: list[int] = []
        flushed = flush_requested or (
            len(state.ingest_buffer) >= self.ingest_flush_after
        )
        if flushed:
            run_ids = self._flush_ingest(state)
        writer = Writer().put_bool(flushed).put_u32(len(run_ids))
        for run_id in run_ids:
            writer.put_i64(run_id)
        return writer.getvalue()

    def _op_flush(self, state: _Connection, reader: Reader) -> bytes:
        reader.expect_end()
        run_ids = self._flush_ingest(state)
        writer = Writer().put_u32(len(run_ids))
        for run_id in run_ids:
            writer.put_i64(run_id)
        return writer.getvalue()

    def _seen_of(self, client_id: str) -> "OrderedDict[int, int]":
        """The client's committed-seq map (store thread only; LRU-bounded)."""
        seen = self._ingest_seen.get(client_id)
        if seen is None:
            if len(self._ingest_seen) >= INGEST_DEDUPE_CLIENTS:
                self._ingest_seen.pop(next(iter(self._ingest_seen)))
            seen = self._ingest_seen[client_id] = OrderedDict()
        else:
            # bump the client to most-recently-seen
            self._ingest_seen[client_id] = self._ingest_seen.pop(client_id)
        return seen

    def _flush_ingest(self, state: _Connection) -> list[int]:
        """Label and commit the connection's buffered runs, in buffer order.

        Entries whose ``(client_id, seq)`` token already committed — a
        reconnecting client replaying a batch whose acknowledgment it
        never received — are answered with their recorded run ids instead
        of being labeled and inserted again: exactly-once ingest across
        disconnects.  Runs only on the store thread, so the dedupe map
        never races.
        """
        if not state.ingest_buffer:
            return []
        from repro.skeleton.skl import SkeletonLabeler
        from repro.workflow.serialization import (
            run_from_json,
            specification_from_json,
        )

        entries, state.ingest_buffer = state.ingest_buffer, []
        seen = self._seen_of(state.client_id) if state.client_id else None
        run_ids: list[int] = []
        fresh: list[tuple[int, int]] = []  # (position in run_ids, seq)
        labeled = []
        for seq, scheme, spec_json, run_json in entries:
            if seen is not None and seq >= 0 and seq in seen:
                run_ids.append(seen[seq])
                continue
            fresh.append((len(run_ids), seq))
            run_ids.append(-1)  # patched after the commit below
            key = (scheme, spec_json)
            labeler = state.labelers.get(key)
            if labeler is None:
                spec = specification_from_json(spec_json)
                labeler = state.labelers[key] = SkeletonLabeler(spec, scheme)
            run = run_from_json(run_json, labeler.specification)
            labeled.append(labeler.label_run(run))
        add_many = getattr(self._store, "add_labeled_runs", None)
        if not labeled:
            committed: list[int] = []  # every entry was a replayed duplicate
        elif add_many is not None:
            # the sharded store's ingest service: per-shard sub-batches
            # commit concurrently through its persistent worker pool
            committed = list(add_many(labeled))
        else:
            committed = [self._store.add_labeled_run(item) for item in labeled]
        for (position, seq), run_id in zip(fresh, committed):
            run_ids[position] = run_id
            if seen is not None and seq >= 0:
                seen[seq] = run_id
                while len(seen) > INGEST_DEDUPE_SEQS:
                    seen.popitem(last=False)
        return run_ids

    def _op_cache_stats(self, state: _Connection, reader: Reader) -> bytes:
        reader.expect_end()
        stats = dict(state.session.cache_stats())
        stats["server"] = {
            "connections": len(self._connections),
            "max_inflight": self.max_inflight,
            "ingest_flush_after": self.ingest_flush_after,
            "ingest_buffered": len(state.ingest_buffer),
        }
        return Writer().put_str(json.dumps(stats, default=str)).getvalue()

    def _op_statistics(self, state: _Connection, reader: Reader) -> bytes:
        reader.expect_end()
        return Writer().put_str(json.dumps(self._store.statistics())).getvalue()

    def _op_list_runs(self, state: _Connection, reader: Reader) -> bytes:
        specification = reader.str() if reader.bool() else None
        reader.expect_end()
        runs = self._store.list_runs(specification)
        return Writer().put_str(json.dumps(runs)).getvalue()

    def _op_list_specs(self, state: _Connection, reader: Reader) -> bytes:
        reader.expect_end()
        specs = self._store.list_specifications()
        return Writer().put_str(json.dumps(specs)).getvalue()

    def _op_health(self, state: _Connection, reader: Reader) -> bytes:
        """Liveness report (protocol v3): shards, pools, inflight depth.

        Runs on the store thread like every other op — a wedged store
        thread therefore makes HEALTH hang too, which is exactly the
        signal a prober wants (the accept loop alone proving nothing).
        """
        reader.expect_end()
        store = self._store
        shard_stores = list(getattr(store, "_stores", None) or [store])
        reachable = 0
        for shard in shard_stores:
            try:
                shard._connection.execute("SELECT 1").fetchone()
                reachable += 1
            except Exception:  # noqa: BLE001 - any failure means unreachable
                pass
        health = {
            "status": "ok" if reachable == len(shard_stores) else "degraded",
            "protocol": wire.PROTOCOL_VERSION,
            "shards_total": len(shard_stores),
            "shards_reachable": reachable,
            "pools": store.pool_stats(),
            "connections": len(self._connections),
            "inflight": sum(queue.qsize() for queue, _, _ in self._connections),
            "ingest_buffered": len(state.ingest_buffer),
            "degraded": store.cache_stats().get("degraded", {}),
        }
        shards = store.cache_stats().get("shards")
        if isinstance(shards, dict):
            # the sharded store's skew table (protocol v4): per-shard spec
            # and run counts, file bytes, sweep hits, replicas — what an
            # operator reads to decide which shard to split
            health["shards"] = shards
        return Writer().put_str(json.dumps(health, default=str)).getvalue()

    # ------------------------------------------------------------------
    # the routing maintenance ops (protocol v4, sharded stores only)
    # ------------------------------------------------------------------
    def _require_sharded(self, op: str) -> Any:
        store = self._store
        if not hasattr(store, "rebalance"):
            raise StorageError(
                f"{op} needs a sharded store; this server fronts a "
                "single-file database"
            )
        return store

    def _op_rebalance(self, state: _Connection, reader: Reader) -> bytes:
        specification = reader.str()
        shard = reader.i64()  # -1 = auto-pick the least-loaded shard
        reader.expect_end()
        store = self._require_sharded("rebalance")
        summary = store.rebalance(specification, None if shard < 0 else shard)
        return Writer().put_str(json.dumps(summary)).getvalue()

    def _op_replicate(self, state: _Connection, reader: Reader) -> bytes:
        specification = reader.str()
        count = reader.i64()
        reader.expect_end()
        store = self._require_sharded("replicate")
        paths = store.replicate(specification, count)
        return Writer().put_str(json.dumps({"replicas": paths})).getvalue()

    def _op_routing(self, state: _Connection, reader: Reader) -> bytes:
        reader.expect_end()
        store = self._require_sharded("routing")
        return Writer().put_str(json.dumps(store.routing_table())).getvalue()


def _error_frame(status: int, exc: BaseException) -> bytes:
    writer = Writer()
    writer.put_u8(status)
    writer.put_str(type(exc).__name__)
    writer.put_str(str(exc))
    return frame(writer.getvalue())


class ServerThread:
    """A daemon running on a background thread with its own event loop.

    The convenience wrapper tests, examples and the throughput bench use::

        with ServerThread(path=db_path) as server:
            store = RemoteStore(server.url)
            ...

    ``stop()`` (or leaving the ``with`` block) performs the daemon's
    clean shutdown — inflight requests drain before the sockets close.
    """

    def __init__(self, store: Any = None, **server_kwargs: Any) -> None:
        self._server = ProvenanceServer(store, **server_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def url(self) -> str:
        return self._server.url

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            await self._server.start()
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self._shutdown.wait()
        await self._server.stop()

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
