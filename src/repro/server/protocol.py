"""The provenance wire protocol: framing and request/response codecs.

Everything on the wire is a **frame**: a 4-byte little-endian unsigned
length followed by that many payload bytes (length excludes itself,
:data:`MAX_FRAME_BYTES` bounds it so a garbage peer cannot make the
server buffer gigabytes).  A request payload is one opcode byte plus an
op-specific body; a response payload is one status byte
(:data:`STATUS_OK` / :data:`STATUS_ERROR` / :data:`STATUS_FATAL`) plus
either the op's answer or an error record (exception class name +
message).  ``STATUS_ERROR`` keeps the connection usable — the store
rejected the operation, not the peer; ``STATUS_FATAL`` means the peer
violated the protocol and the connection closes after the frame.

Scalar encodings match the binary pair-workload format next door
(:mod:`repro.api.workload`): integers are little-endian signed 64-bit,
strings are a u32 byte length plus UTF-8, booleans one byte each.  The
**batch** op goes further and reuses that format outright — its request
body *is* a pair-workload blob (magic, run-id header, two interleaved
LE int64 handle columns), so a workload packed on disk replays over a
connection with zero re-encoding and zero parsing beyond the header.

The codec helpers here are shared by the asyncio daemon
(:mod:`repro.server.daemon`) and the blocking client
(:mod:`repro.server.client`); keeping both sides on one set of
functions is what makes the bit-identical answer guarantee testable.
"""

from __future__ import annotations

import struct
from typing import Optional, Sequence

from repro.exceptions import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_FATAL",
    "OP_HELLO",
    "OP_POINT",
    "OP_BATCH",
    "OP_BATCH_PAIRS",
    "OP_SWEEP",
    "OP_CROSS_SWEEP",
    "OP_CROSS_BATCH",
    "OP_DATA_DEP",
    "OP_INGEST",
    "OP_FLUSH",
    "OP_CACHE_STATS",
    "OP_STATISTICS",
    "OP_LIST_RUNS",
    "OP_LIST_SPECS",
    "OP_HEALTH",
    "OP_REBALANCE",
    "OP_REPLICATE",
    "OP_ROUTING",
    "OP_NAMES",
    "Writer",
    "Reader",
    "frame",
    "split_frame_length",
]

#: bumped on any incompatible change; exchanged in the HELLO handshake.
#: Version 2 appends a pushdown-mode byte to the SWEEP and CROSS_SWEEP
#: request bodies (see :func:`put_pushdown`).
#: Version 3 adds fault tolerance: the HELLO request carries a client id
#: string after the version, every INGEST entry is prefixed with an i64
#: sequence token (the server deduplicates ``(client_id, seq)`` so a
#: reconnecting client can safely replay unacknowledged entries), and the
#: HEALTH op reports shard reachability, pool liveness and inflight depth.
#: Version 4 adds the shard routing subsystem: the REBALANCE, REPLICATE
#: and ROUTING maintenance opcodes (sharded stores only), and the HEALTH
#: report gains the per-shard skew table (spec/run counts, file bytes,
#: sweep hits, replicas) from ``cache_stats()["shards"]``.
PROTOCOL_VERSION = 4

#: default TCP port of ``repro-provenance serve`` and ``repro://`` URLs
DEFAULT_PORT = 9763

#: hard per-frame ceiling — larger announced lengths are a protocol error
MAX_FRAME_BYTES = 64 * 1024 * 1024

STATUS_OK = 0
STATUS_ERROR = 1
STATUS_FATAL = 2

(
    OP_HELLO,
    OP_POINT,
    OP_BATCH,
    OP_BATCH_PAIRS,
    OP_SWEEP,
    OP_CROSS_SWEEP,
    OP_CROSS_BATCH,
    OP_DATA_DEP,
    OP_INGEST,
    OP_FLUSH,
    OP_CACHE_STATS,
    OP_STATISTICS,
    OP_LIST_RUNS,
    OP_LIST_SPECS,
    OP_HEALTH,
    OP_REBALANCE,
    OP_REPLICATE,
    OP_ROUTING,
) = range(1, 19)

#: opcode -> display name (error messages and the bench's op mix report)
OP_NAMES = {
    OP_HELLO: "hello",
    OP_POINT: "point",
    OP_BATCH: "batch",
    OP_BATCH_PAIRS: "batch-pairs",
    OP_SWEEP: "sweep",
    OP_CROSS_SWEEP: "cross-sweep",
    OP_CROSS_BATCH: "cross-batch",
    OP_DATA_DEP: "data-dep",
    OP_INGEST: "ingest",
    OP_FLUSH: "flush",
    OP_CACHE_STATS: "cache-stats",
    OP_STATISTICS: "statistics",
    OP_LIST_RUNS: "list-runs",
    OP_LIST_SPECS: "list-specs",
    OP_HEALTH: "health",
    OP_REBALANCE: "rebalance",
    OP_REPLICATE: "replicate",
    OP_ROUTING: "routing",
}

_LEN = struct.Struct("<I")
_I64 = struct.Struct("<q")


def frame(payload: bytes) -> bytes:
    """Wrap *payload* in its length prefix (the unit everything ships as)."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol limit"
        )
    return _LEN.pack(len(payload)) + payload


def split_frame_length(prefix: bytes) -> int:
    """Decode and validate one 4-byte length prefix."""
    if len(prefix) != 4:
        raise ProtocolError(
            f"truncated frame length: got {len(prefix)} of 4 prefix bytes"
        )
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"announced frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol limit"
        )
    return length


class Writer:
    """Builds one payload; every ``put_*`` matches a ``Reader`` getter."""

    def __init__(self) -> None:
        self._parts = bytearray()

    def put_u8(self, value: int) -> "Writer":
        self._parts.append(value & 0xFF)
        return self

    def put_bool(self, value: bool) -> "Writer":
        return self.put_u8(1 if value else 0)

    def put_u32(self, value: int) -> "Writer":
        self._parts += _LEN.pack(value)
        return self

    def put_i64(self, value: int) -> "Writer":
        self._parts += _I64.pack(int(value))
        return self

    def put_str(self, value: str) -> "Writer":
        encoded = value.encode("utf-8")
        self.put_u32(len(encoded))
        self._parts += encoded
        return self

    def put_raw(self, value: bytes) -> "Writer":
        """Append bytes with no length prefix (trailing blobs like workloads)."""
        self._parts += value
        return self

    def put_bools(self, values: Sequence[bool]) -> "Writer":
        self.put_u32(len(values))
        self._parts += bytes(1 if value else 0 for value in values)
        return self

    def put_executions(self, executions: Sequence[tuple]) -> "Writer":
        """A counted list of ``(module, instance)`` executions."""
        self.put_u32(len(executions))
        for module, instance in executions:
            self.put_str(str(module)).put_i64(int(instance))
        return self

    def getvalue(self) -> bytes:
        return bytes(self._parts)


class Reader:
    """Pulls typed values off one payload; truncation is a protocol error."""

    def __init__(self, payload: bytes) -> None:
        self._view = memoryview(payload)
        self._offset = 0

    def _take(self, count: int) -> memoryview:
        end = self._offset + count
        if end > len(self._view):
            raise ProtocolError(
                f"truncated payload: needed {count} more bytes at offset "
                f"{self._offset}, frame has {len(self._view)}"
            )
        chunk = self._view[self._offset : end]
        self._offset = end
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def bool(self) -> bool:
        return bool(self.u8())

    def u32(self) -> int:
        return _LEN.unpack(self._take(4))[0]

    def i64(self) -> int:
        return _I64.unpack(self._take(8))[0]

    def str(self) -> str:
        length = self.u32()
        try:
            return bytes(self._take(length)).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"invalid UTF-8 in string field: {exc}") from None

    def rest(self) -> bytes:
        """Everything left in the payload (trailing blobs like workloads)."""
        chunk = bytes(self._view[self._offset :])
        self._offset = len(self._view)
        return chunk

    def bools(self) -> list[bool]:
        count = self.u32()
        return [bool(byte) for byte in self._take(count)]

    def executions(self) -> list[tuple]:
        count = self.u32()
        return [(self.str(), self.i64()) for _ in range(count)]

    def expect_end(self) -> None:
        if self._offset != len(self._view):
            raise ProtocolError(
                f"{len(self._view) - self._offset} trailing bytes after a "
                "complete request body"
            )


# ----------------------------------------------------------------------
# shared composite codecs (both directions use these on per-run maps)
# ----------------------------------------------------------------------
def put_run_map_executions(writer: Writer, per_run: dict) -> None:
    """``run_id -> [(module, instance), ...]`` (cross-run sweep answers)."""
    writer.put_u32(len(per_run))
    for run_id, affected in per_run.items():
        writer.put_i64(run_id).put_executions(affected)


def read_run_map_executions(reader: Reader) -> dict:
    return {reader.i64(): reader.executions() for _ in range(reader.u32())}


def put_run_map_bools(writer: Writer, per_run: dict) -> None:
    """``run_id -> [bool, ...]`` (cross-run batch answer rows)."""
    writer.put_u32(len(per_run))
    for run_id, answers in per_run.items():
        writer.put_i64(run_id).put_bools(answers)


def read_run_map_bools(reader: Reader) -> dict:
    return {reader.i64(): reader.bools() for _ in range(reader.u32())}


def put_skipped(writer: Writer, skipped: Sequence[int]) -> None:
    """The skipped-run id list every cross-run result carries."""
    writer.put_u32(len(skipped))
    for run_id in skipped:
        writer.put_i64(run_id)


def read_skipped(reader: Reader) -> list[int]:
    return [reader.i64() for _ in range(reader.u32())]


def put_workers(writer: Writer, workers: Optional[int]) -> None:
    """Cross-run ``workers`` knob; -1 encodes the auto-sizing ``None``."""
    writer.put_i64(-1 if workers is None else int(workers))


def read_workers(reader: Reader) -> Optional[int]:
    value = reader.i64()
    return None if value < 0 else value


#: the sweep pushdown override as one byte (protocol version 2): 0 encodes
#: ``None`` (defer to the server session's default)
_PUSHDOWN_WIRE = {None: 0, "auto": 1, "always": 2, "never": 3}
_PUSHDOWN_OF_WIRE = {code: mode for mode, code in _PUSHDOWN_WIRE.items()}


def put_pushdown(writer: Writer, mode: Optional[str]) -> None:
    """The sweep's SQL-pushdown override (``None``/auto/always/never)."""
    try:
        writer.put_u8(_PUSHDOWN_WIRE[mode])
    except KeyError:
        raise ProtocolError(f"unknown pushdown mode {mode!r}") from None


def read_pushdown(reader: Reader) -> Optional[str]:
    code = reader.u8()
    try:
        return _PUSHDOWN_OF_WIRE[code]
    except KeyError:
        raise ProtocolError(f"unknown pushdown mode byte {code}") from None
