"""The blocking provenance client: a store/session duck type over TCP.

:class:`RemoteStore` connects to a :class:`~repro.server.daemon.ProvenanceServer`
and exposes the slice of the store surface the CLI and examples rely on
(``session()``, ``list_runs``, ``statistics``, ``add_labeled_run(s)``,
``close``); :class:`RemoteSession` mirrors the
:class:`~repro.api.ProvenanceSession` duck type — ``run`` / ``run_many`` /
``compile`` / ``cache_stats`` / ``target_kind`` — so code written against
an in-process session runs unchanged against ``repro://host:port/``
targets.  Answers are **bit-identical** to an in-process session over the
same store: the session state (adaptive promotion, compiled kernels)
lives server-side, pinned to this connection.

Batch queries take the fast lane: a handle-native
:class:`~repro.api.BatchQuery` is encoded with
:func:`repro.api.workload.encode_pair_workload` — the same bytes a packed
workload file holds — so the server replays it with zero parsing.

The client is deliberately blocking (one request, one response, a lock
around the pair): the concurrency story is many clients, not many
threads sharing one socket.  Ingest can be buffered server-side
(:meth:`RemoteStore.ingest` with ``flush=False``); the server commits
through ``add_labeled_runs`` when the buffer fills, on an explicit
:meth:`RemoteStore.flush`, or at disconnect.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
import uuid
from typing import Any, Callable, Iterable, Optional, Sequence
from urllib.parse import urlsplit

import repro.exceptions as _exceptions
from repro.exceptions import CircuitOpenError
from repro.faults import fault_point
from repro.api.queries import (
    BatchQuery,
    CrossRunBatchQuery,
    CrossRunBatchResult,
    CrossRunPointQuery,
    CrossRunPointResult,
    CrossRunQuery,
    CrossRunSweepResult,
    DataDependencyQuery,
    DownstreamQuery,
    PointQuery,
    UpstreamQuery,
)
from repro.api.workload import encode_pair_workload
from repro.exceptions import ProtocolError, QueryPlanError, ReproError
from repro.server import protocol as wire
from repro.server.protocol import Reader, Writer, frame
from repro.workflow.run import RunVertex

__all__ = ["RemoteStore", "RemoteSession", "parse_url", "is_remote_target"]


def is_remote_target(target: Any) -> bool:
    """Whether a ``--database`` argument names a server, not a file."""
    return isinstance(target, str) and target.startswith("repro://")


def parse_url(url: str) -> tuple[str, int]:
    """Split ``repro://host[:port]/`` into ``(host, port)``."""
    parts = urlsplit(url)
    if parts.scheme != "repro" or not parts.hostname:
        raise ProtocolError(
            f"not a provenance server URL: {url!r} (expected repro://host:port/)"
        )
    return parts.hostname, parts.port or wire.DEFAULT_PORT


def _as_execution(value: Any) -> tuple:
    """The session's endpoint coercion, applied before encoding."""
    if isinstance(value, RunVertex):
        return (value.module, value.instance)
    return (str(value[0]), int(value[1]))


class _TransportError(ProtocolError):
    """The connection died mid-exchange (EOF before a complete response).

    Internal retry classification: unlike a server-reported error, the
    request may or may not have executed, so only exchanges that are
    idempotent on replay (every query; ingest via its sequence tokens) go
    through the retry loop that catches this.
    """


class _ConnectError(ProtocolError):
    """TCP connect (or the HELLO exchange's transport) failed; retryable."""


class RemoteStore:
    """One TCP connection to a provenance daemon, store-shaped.

    Accepts a ``repro://host:port/`` URL or an explicit host/port pair.
    The HELLO handshake pins the protocol version at connect time and
    registers the client's id for ingest deduplication.

    Fault tolerance (protocol v3): a transport failure — refused connect,
    dropped connection, truncated response, socket timeout — triggers up
    to *retries* transparent re-attempts with bounded exponential backoff
    and jitter; each attempt reconnects and re-runs the HELLO handshake
    if needed.  Every retried operation is idempotent on replay: queries
    are read-only, and buffered ingest entries carry client-side sequence
    tokens the server deduplicates, so a flush whose acknowledgment was
    lost mid-disconnect can never double-insert.  After
    *breaker_threshold* consecutive exhausted exchanges the circuit
    breaker opens and requests fast-fail with
    :class:`~repro.exceptions.CircuitOpenError` for *breaker_reset*
    seconds; the first request after that probes the server (half-open)
    and either closes the breaker or re-opens it.  :attr:`fault_stats`
    counts retries, reconnects, transport errors and breaker trips.
    """

    def __init__(
        self,
        url: Optional[str] = None,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 30.0,
        retries: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        retry_seed: Optional[int] = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 5.0,
    ) -> None:
        if url is not None:
            host, port = parse_url(url)
        elif host is None:
            raise ProtocolError("RemoteStore needs a repro:// URL or a host")
        port = wire.DEFAULT_PORT if port is None else int(port)
        self.host, self.port = host, port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.breaker_threshold = max(1, int(breaker_threshold))
        self.breaker_reset = float(breaker_reset)
        self._rng = random.Random(retry_seed)
        self._lock = threading.Lock()
        self._closed = False
        self._socket: Optional[socket.socket] = None
        #: this client's identity across reconnects; keys the server's
        #: ingest dedupe map (v3 HELLO)
        self.client_id = uuid.uuid4().hex
        self._seq = 0
        #: (seq, scheme, spec_json, run_json) entries not yet acknowledged
        #: as flushed; replayed after a reconnect (the server dedupes)
        self._unflushed: list[tuple[int, str, str, str]] = []
        #: seqs already delivered over the *current* connection (cleared
        #: on every reconnect so the rebuild closure knows what to resend)
        self._sent_on_connection: set[int] = set()
        self._consecutive_failures = 0
        self._breaker_open_until = 0.0
        self._connects = 0
        #: lifetime fault-handling counters (observable, like cache_stats)
        self.fault_stats = {
            "retries": 0,
            "reconnects": 0,
            "transport_errors": 0,
            "breaker_opens": 0,
            "circuit_rejections": 0,
        }
        with self._lock:
            last: Optional[BaseException] = None
            for attempt in range(self.retries + 1):
                if attempt:
                    self.fault_stats["retries"] += 1
                    time.sleep(self._backoff(attempt))
                try:
                    self._connect_locked()
                    break
                except (_ConnectError, _TransportError, OSError) as exc:
                    self.fault_stats["transport_errors"] += 1
                    self._drop_socket()
                    last = exc
            else:
                if isinstance(last, ProtocolError):
                    raise last
                raise ProtocolError(
                    f"could not connect to provenance server at "
                    f"{host}:{port}: {last}"
                ) from last
        self._session: Optional[RemoteSession] = None

    # ------------------------------------------------------------------
    # the wire round trip
    # ------------------------------------------------------------------
    def _request(self, opcode: int, body: bytes = b"") -> Reader:
        """One request/response exchange; returns a Reader over the answer."""
        return self._exchange(opcode, lambda: body)

    def _exchange(self, opcode: int, rebuild: Callable[[], bytes]) -> Reader:
        """The retrying request loop shared by every operation.

        *rebuild* produces the request body per attempt — ingest uses it
        to include exactly the entries not yet delivered over the current
        connection, so a replay after reconnect resends what the dead
        connection may have lost and nothing else.
        """
        with self._lock:
            if self._closed:
                raise ProtocolError("client connection is closed")
            self._check_breaker_locked()
            last: Optional[BaseException] = None
            response: Optional[bytes] = None
            for attempt in range(self.retries + 1):
                if attempt:
                    self.fault_stats["retries"] += 1
                    time.sleep(self._backoff(attempt))
                try:
                    if self._socket is None:
                        self._connect_locked()
                    payload = bytes([opcode]) + rebuild()
                    fault_point("client.send")
                    self._socket.sendall(frame(payload))
                    response = self._read_frame()
                    break
                except (_ConnectError, _TransportError, OSError) as exc:
                    self.fault_stats["transport_errors"] += 1
                    self._drop_socket()
                    last = exc
            if response is None:
                self._note_failure_locked()
                if isinstance(last, ProtocolError):
                    raise last
                raise ProtocolError(
                    f"connection to {self.host}:{self.port} failed: {last}"
                ) from last
            # any complete response frame proves the server reachable
            self._consecutive_failures = 0
        reader = Reader(response)
        status = reader.u8()
        if status == wire.STATUS_OK:
            return reader
        error_class = reader.str()
        message = reader.str()
        if status == wire.STATUS_FATAL:
            # the server is about to close the connection; drop the socket
            # (the next request reconnects — the client object stays usable)
            with self._lock:
                self._drop_socket()
        raise _rebuild_error(error_class, message)

    def _connect_locked(self) -> None:
        """Connect and complete the v3 HELLO handshake (under the lock)."""
        try:
            self._socket = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            self._socket = None
            raise _ConnectError(
                f"could not connect to provenance server at "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        self._socket.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sent_on_connection = set()
        if self._connects:
            self.fault_stats["reconnects"] += 1
        self._connects += 1
        hello = (
            Writer()
            .put_u32(wire.PROTOCOL_VERSION)
            .put_str(self.client_id)
            .getvalue()
        )
        try:
            self._socket.sendall(frame(bytes([wire.OP_HELLO]) + hello))
            response = self._read_frame()
        except OSError as exc:
            self._drop_socket()
            raise _ConnectError(
                f"could not connect to provenance server at "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        reader = Reader(response)
        status = reader.u8()
        if status != wire.STATUS_OK:
            error_class = reader.str()
            message = reader.str()
            self._drop_socket()
            # a handshake rejection (e.g. version mismatch) is permanent,
            # not transient: _rebuild_error yields a plain ProtocolError,
            # which the retry loop deliberately does not catch
            raise _rebuild_error(error_class, message)
        self.server_protocol = reader.u32()
        #: the server-side store path (so ``store.path`` reads sensibly)
        self.path = f"repro://{self.host}:{self.port}{reader.str()}"
        self.sharded = reader.bool()

    def _backoff(self, attempt: int) -> float:
        """Bounded exponential backoff with jitter before attempt *attempt*."""
        base = min(self.backoff_max, self.backoff_base * (2 ** (attempt - 1)))
        return base * (0.5 + self._rng.random() / 2)

    def _check_breaker_locked(self) -> None:
        if self._breaker_open_until <= 0:
            return
        now = time.monotonic()
        if now < self._breaker_open_until:
            self.fault_stats["circuit_rejections"] += 1
            raise CircuitOpenError(
                f"circuit breaker open for {self.host}:{self.port} after "
                f"{self._consecutive_failures} consecutive failures; "
                f"retrying in {self._breaker_open_until - now:.2f}s"
            )
        # half-open: this request probes the server; failure re-opens
        self._breaker_open_until = 0.0

    def _note_failure_locked(self) -> None:
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.breaker_threshold:
            self._breaker_open_until = time.monotonic() + self.breaker_reset
            self.fault_stats["breaker_opens"] += 1

    def _read_frame(self) -> bytes:
        fault_point("client.recv")
        prefix = self._read_exactly(4)
        return self._read_exactly(wire.split_frame_length(prefix))

    def _read_exactly(self, count: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            chunk = self._socket.recv(count - len(chunks))
            if not chunk:
                raise _TransportError(
                    "server closed the connection mid-response "
                    f"({len(chunks)} of {count} bytes)"
                )
            chunks += chunk
        return bytes(chunks)

    def _drop_socket(self) -> None:
        """Close the socket without closing the client (reconnects later)."""
        sock, self._socket = self._socket, None
        self._sent_on_connection = set()
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close never matters twice
                pass

    def close(self) -> None:
        """Close the connection (flushing any server-side ingest buffer)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._drop_socket()

    def __enter__(self) -> "RemoteStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "connected"
        return f"RemoteStore({self.path!r}, {state})"

    # ------------------------------------------------------------------
    # the store surface
    # ------------------------------------------------------------------
    def session(self) -> "RemoteSession":
        """The connection's query session (state lives server-side)."""
        if self._session is None:
            self._session = RemoteSession(self)
        return self._session

    def list_runs(self, specification: Optional[str] = None) -> list[dict]:
        """Summaries of stored runs, optionally filtered by specification."""
        writer = Writer().put_bool(specification is not None)
        if specification is not None:
            writer.put_str(specification)
        return json.loads(self._request(wire.OP_LIST_RUNS, writer.getvalue()).str())

    def list_specifications(self) -> list[dict]:
        """Summaries of every stored specification."""
        return json.loads(self._request(wire.OP_LIST_SPECS).str())

    def statistics(self) -> dict:
        """Row counts per table on the server's store."""
        return json.loads(self._request(wire.OP_STATISTICS).str())

    def cache_stats(self) -> dict:
        """The server-side session/store cache statistics."""
        return json.loads(self._request(wire.OP_CACHE_STATS).str())

    def health(self) -> dict:
        """The server's HEALTH report: shards, pools, inflight depth (v3)."""
        return json.loads(self._request(wire.OP_HEALTH).str())

    # ------------------------------------------------------------------
    # routing maintenance (protocol v4, sharded stores only)
    # ------------------------------------------------------------------
    def rebalance(self, specification: str, shard: Optional[int] = None) -> dict:
        """Migrate *specification*'s runs to *shard* (server-side, online).

        ``shard=None`` lets the server pick the least-loaded shard.  The
        server raises :class:`~repro.exceptions.StorageError` when it
        fronts a single-file store.
        """
        body = (
            Writer()
            .put_str(specification)
            .put_i64(-1 if shard is None else int(shard))
            .getvalue()
        )
        return json.loads(self._request(wire.OP_REBALANCE, body).str())

    def replicate(self, specification: str, count: int) -> list[str]:
        """Attach *count* read replicas of *specification*'s owning shard."""
        body = Writer().put_str(specification).put_i64(int(count)).getvalue()
        return json.loads(self._request(wire.OP_REPLICATE, body).str())["replicas"]

    def routing_table(self) -> dict:
        """The server store's routing table (overrides, runs, replicas)."""
        return json.loads(self._request(wire.OP_ROUTING).str())

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest(self, labeled_runs: Iterable[Any], *, flush: bool = True) -> list[int]:
        """Ship labeled runs to the server's per-connection ingest buffer.

        With ``flush=True`` (the default) the buffer — these runs plus
        anything previously buffered — commits now and the assigned run
        ids come back in buffer order.  With ``flush=False`` the server
        holds them until the buffer reaches its threshold, an explicit
        :meth:`flush`, or disconnect; the returned list is then empty
        unless this request tripped the automatic flush.

        Every entry carries a client-side sequence token; a reconnect mid
        exchange replays the unacknowledged entries and the server
        deduplicates on ``(client_id, seq)``, so no disconnect ordering
        can drop or double-insert a run.
        """
        from repro.workflow.serialization import run_to_json, specification_to_json

        encoded = []
        for labeled in labeled_runs:
            encoded.append(
                (
                    labeled.spec_index.scheme_name,
                    specification_to_json(labeled.run.specification),
                    run_to_json(labeled.run),
                )
            )
        with self._lock:
            for scheme, spec_json, run_json in encoded:
                self._unflushed.append((self._seq, scheme, spec_json, run_json))
                self._seq += 1
        return self._ingest_exchange(flush)

    def _ingest_exchange(self, flush: bool) -> list[int]:
        """One INGEST round trip covering every unacknowledged entry."""

        def rebuild() -> bytes:
            # runs under the exchange lock, once per attempt: after a
            # reconnect _sent_on_connection is empty, so everything
            # unflushed — including what the dead connection buffered —
            # ships again and the server's dedupe sorts out what committed
            fresh = [
                entry
                for entry in self._unflushed
                if entry[0] not in self._sent_on_connection
            ]
            writer = Writer().put_bool(flush).put_u32(len(fresh))
            for seq, scheme, spec_json, run_json in fresh:
                writer.put_i64(seq)
                writer.put_str(scheme).put_str(spec_json).put_str(run_json)
            return writer.getvalue()

        reader = self._exchange(wire.OP_INGEST, rebuild)
        flushed = reader.bool()
        run_ids = [reader.i64() for _ in range(reader.u32())]
        with self._lock:
            if flushed:
                self._unflushed.clear()
                self._sent_on_connection = set()
            else:
                self._sent_on_connection.update(
                    entry[0] for entry in self._unflushed
                )
        return run_ids

    def flush(self) -> list[int]:
        """Commit the server-side ingest buffer; returns the new run ids.

        Routed through INGEST with zero new entries, so entries a dead
        connection buffered but never committed ride along (the server
        dedupes any that its disconnect-flush already committed).
        """
        return self._ingest_exchange(True)

    def add_labeled_runs(self, labeled_runs: Iterable[Any]) -> list[int]:
        """Store many labeled runs (synchronous: commits before returning).

        Any previously buffered ingest flushes first so the returned ids
        correspond to *labeled_runs* alone, in input order.
        """
        if self._unflushed:
            self.flush()
        return self.ingest(labeled_runs, flush=True)

    def add_labeled_run(self, labeled: Any) -> int:
        """Store one labeled run and return its id."""
        return self.add_labeled_runs([labeled])[0]

    @property
    def pending_ingest(self) -> int:
        """Client-side count of runs buffered but not yet flushed."""
        return len(self._unflushed)


class _RemotePlan:
    """The compile-once handle of the remote session (re-sends on execute)."""

    def __init__(self, session: "RemoteSession", query: Any) -> None:
        self.session = session
        self.query = query

    def execute(self):
        return self.session.run(self.query)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_RemotePlan(query={self.query!r})"


class RemoteSession:
    """The :class:`~repro.api.ProvenanceSession` duck type over the wire.

    Each declarative query maps to one protocol op; the server answers it
    through a real per-connection session, so promotion and kernel state
    accumulate exactly as they would in-process.  ``compile`` returns a
    plan that re-sends the query — the expensive compiled state the plan
    represents lives (and persists) server-side.
    """

    target_kind = "store"

    def __init__(self, store: RemoteStore) -> None:
        self._store = store

    def run(self, query: Any):
        """Execute one declarative query on the server."""
        runner = self._RUNNERS.get(type(query))
        if runner is None:
            raise QueryPlanError(
                f"not a declarative query object: {type(query).__name__!r}"
            )
        return runner(self, query)

    def run_many(self, queries: Iterable[Any]) -> list:
        """Execute several queries in order (one round trip each)."""
        return [self.run(query) for query in queries]

    def compile(self, query: Any) -> _RemotePlan:
        """A reusable plan; the compiled state it reuses lives server-side."""
        if type(query) not in self._RUNNERS:
            raise QueryPlanError(
                f"not a declarative query object: {type(query).__name__!r}"
            )
        return _RemotePlan(self, query)

    def cache_stats(self) -> dict:
        """The server-side session statistics for this connection."""
        return self._store.cache_stats()

    # ------------------------------------------------------------------
    # per-query encoders
    # ------------------------------------------------------------------
    def _require_run_id(self, query: Any) -> int:
        if query.run_id is None:
            raise QueryPlanError(
                f"{type(query).__name__} against a store-backed session "
                "needs a run_id"
            )
        return int(query.run_id)

    def _run_point(self, query: PointQuery) -> bool:
        writer = Writer().put_i64(self._require_run_id(query))
        for module, instance in (
            _as_execution(query.source),
            _as_execution(query.target),
        ):
            writer.put_str(module).put_i64(instance)
        return self._store._request(wire.OP_POINT, writer.getvalue()).bool()

    def _run_batch(self, query: BatchQuery) -> list[bool]:
        run_id = self._require_run_id(query)
        if query.handle_native:
            # the zero-parse lane: the body is a pair-workload blob
            body = encode_pair_workload(
                query.source_ids, query.target_ids, run_id=run_id
            )
            return self._store._request(wire.OP_BATCH, body).bools()
        writer = Writer().put_i64(run_id).put_u32(len(query.pairs))
        for source, target in query.pairs:
            for module, instance in (_as_execution(source), _as_execution(target)):
                writer.put_str(module).put_i64(instance)
        return self._store._request(wire.OP_BATCH_PAIRS, writer.getvalue()).bools()

    def _run_sweep(self, query: Any, *, downstream: bool) -> list[tuple]:
        module, instance = _as_execution(query.execution)
        writer = (
            Writer()
            .put_i64(self._require_run_id(query))
            .put_bool(downstream)
            .put_str(module)
            .put_i64(instance)
        )
        wire.put_pushdown(writer, query.pushdown)
        return self._store._request(wire.OP_SWEEP, writer.getvalue()).executions()

    def _run_cross_sweep(self, query: CrossRunQuery) -> CrossRunSweepResult:
        anchor = _as_execution(query.execution)
        writer = Writer().put_str(query.specification)
        writer.put_str(anchor[0]).put_i64(anchor[1])
        writer.put_bool(query.direction == "downstream")
        wire.put_workers(writer, query.workers)
        wire.put_pushdown(writer, query.pushdown)
        reader = self._store._request(wire.OP_CROSS_SWEEP, writer.getvalue())
        return CrossRunSweepResult(
            specification=query.specification,
            execution=anchor,
            direction=query.direction,
            per_run=wire.read_run_map_executions(reader),
            skipped_runs=wire.read_skipped(reader),
        )

    def _cross_batch_round_trip(
        self, specification: str, pairs: Sequence[tuple], workers: Optional[int]
    ) -> tuple[dict, list[int]]:
        writer = Writer().put_str(specification).put_u32(len(pairs))
        for source, target in pairs:
            for module, instance in (source, target):
                writer.put_str(module).put_i64(instance)
        wire.put_workers(writer, workers)
        reader = self._store._request(wire.OP_CROSS_BATCH, writer.getvalue())
        return wire.read_run_map_bools(reader), wire.read_skipped(reader)

    def _run_cross_batch(self, query: CrossRunBatchQuery) -> CrossRunBatchResult:
        pairs = [
            (_as_execution(source), _as_execution(target))
            for source, target in query.pairs
        ]
        per_run, skipped = self._cross_batch_round_trip(
            query.specification, pairs, query.workers
        )
        return CrossRunBatchResult(
            specification=query.specification,
            pairs=pairs,
            per_run=per_run,
            skipped_runs=skipped,
        )

    def _run_cross_point(self, query: CrossRunPointQuery) -> CrossRunPointResult:
        # mirrors the in-process plan: a single-pair cross-run batch
        source = _as_execution(query.source)
        target = _as_execution(query.target)
        per_run, skipped = self._cross_batch_round_trip(
            query.specification, [(source, target)], query.workers
        )
        return CrossRunPointResult(
            specification=query.specification,
            source=source,
            target=target,
            per_run={run_id: bool(answers[0]) for run_id, answers in per_run.items()},
            skipped_runs=skipped,
        )

    def _run_data_dep(self, query: DataDependencyQuery) -> bool:
        writer = Writer().put_i64(self._require_run_id(query)).put_str(query.item)
        if query.on_module is not None:
            module, instance = _as_execution(query.on_module)
            writer.put_bool(True).put_str(module).put_i64(instance)
        else:
            writer.put_bool(False).put_str(query.on_item)
        return self._store._request(wire.OP_DATA_DEP, writer.getvalue()).bool()

    _RUNNERS = {
        PointQuery: _run_point,
        BatchQuery: _run_batch,
        DownstreamQuery: lambda self, query: self._run_sweep(query, downstream=True),
        UpstreamQuery: lambda self, query: self._run_sweep(query, downstream=False),
        CrossRunQuery: _run_cross_sweep,
        CrossRunBatchQuery: _run_cross_batch,
        CrossRunPointQuery: _run_cross_point,
        DataDependencyQuery: _run_data_dep,
    }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteSession(over {self._store.path!r})"


def _rebuild_error(error_class: str, message: str) -> ReproError:
    """Rehydrate a server-reported error as the matching local exception."""
    candidate = getattr(_exceptions, error_class, None)
    if isinstance(candidate, type) and issubclass(candidate, ReproError):
        try:
            return candidate(message)
        except TypeError:  # pragma: no cover - exotic constructor signatures
            pass
    return ReproError(f"{error_class}: {message}")

