"""The blocking provenance client: a store/session duck type over TCP.

:class:`RemoteStore` connects to a :class:`~repro.server.daemon.ProvenanceServer`
and exposes the slice of the store surface the CLI and examples rely on
(``session()``, ``list_runs``, ``statistics``, ``add_labeled_run(s)``,
``close``); :class:`RemoteSession` mirrors the
:class:`~repro.api.ProvenanceSession` duck type — ``run`` / ``run_many`` /
``compile`` / ``cache_stats`` / ``target_kind`` — so code written against
an in-process session runs unchanged against ``repro://host:port/``
targets.  Answers are **bit-identical** to an in-process session over the
same store: the session state (adaptive promotion, compiled kernels)
lives server-side, pinned to this connection.

Batch queries take the fast lane: a handle-native
:class:`~repro.api.BatchQuery` is encoded with
:func:`repro.api.workload.encode_pair_workload` — the same bytes a packed
workload file holds — so the server replays it with zero parsing.

The client is deliberately blocking (one request, one response, a lock
around the pair): the concurrency story is many clients, not many
threads sharing one socket.  Ingest can be buffered server-side
(:meth:`RemoteStore.ingest` with ``flush=False``); the server commits
through ``add_labeled_runs`` when the buffer fills, on an explicit
:meth:`RemoteStore.flush`, or at disconnect.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Iterable, Optional, Sequence
from urllib.parse import urlsplit

import repro.exceptions as _exceptions
from repro.api.queries import (
    BatchQuery,
    CrossRunBatchQuery,
    CrossRunBatchResult,
    CrossRunPointQuery,
    CrossRunPointResult,
    CrossRunQuery,
    CrossRunSweepResult,
    DataDependencyQuery,
    DownstreamQuery,
    PointQuery,
    UpstreamQuery,
)
from repro.api.workload import encode_pair_workload
from repro.exceptions import ProtocolError, QueryPlanError, ReproError
from repro.server import protocol as wire
from repro.server.protocol import Reader, Writer, frame
from repro.workflow.run import RunVertex

__all__ = ["RemoteStore", "RemoteSession", "parse_url", "is_remote_target"]


def is_remote_target(target: Any) -> bool:
    """Whether a ``--database`` argument names a server, not a file."""
    return isinstance(target, str) and target.startswith("repro://")


def parse_url(url: str) -> tuple[str, int]:
    """Split ``repro://host[:port]/`` into ``(host, port)``."""
    parts = urlsplit(url)
    if parts.scheme != "repro" or not parts.hostname:
        raise ProtocolError(
            f"not a provenance server URL: {url!r} (expected repro://host:port/)"
        )
    return parts.hostname, parts.port or wire.DEFAULT_PORT


def _as_execution(value: Any) -> tuple:
    """The session's endpoint coercion, applied before encoding."""
    if isinstance(value, RunVertex):
        return (value.module, value.instance)
    return (str(value[0]), int(value[1]))


class RemoteStore:
    """One TCP connection to a provenance daemon, store-shaped.

    Accepts a ``repro://host:port/`` URL or an explicit host/port pair.
    The HELLO handshake pins the protocol version at connect time.
    """

    def __init__(
        self,
        url: Optional[str] = None,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 30.0,
    ) -> None:
        if url is not None:
            host, port = parse_url(url)
        elif host is None:
            raise ProtocolError("RemoteStore needs a repro:// URL or a host")
        port = wire.DEFAULT_PORT if port is None else int(port)
        self.host, self.port = host, port
        self._lock = threading.Lock()
        self._closed = False
        self._pending_ingest = 0
        try:
            self._socket = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ProtocolError(
                f"could not connect to provenance server at {host}:{port}: {exc}"
            ) from exc
        self._socket.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello = self._request(
            wire.OP_HELLO, Writer().put_u32(wire.PROTOCOL_VERSION).getvalue()
        )
        self.server_protocol = hello.u32()
        #: the server-side store path (so ``store.path`` reads sensibly)
        self.path = f"repro://{host}:{port}{hello.str()}"
        self.sharded = hello.bool()
        self._session: Optional[RemoteSession] = None

    # ------------------------------------------------------------------
    # the wire round trip
    # ------------------------------------------------------------------
    def _request(self, opcode: int, body: bytes = b"") -> Reader:
        """One request/response exchange; returns a Reader over the answer."""
        payload = bytes([opcode]) + body
        with self._lock:
            if self._closed:
                raise ProtocolError("client connection is closed")
            try:
                self._socket.sendall(frame(payload))
                response = self._read_frame()
            except OSError as exc:
                self._teardown()
                raise ProtocolError(
                    f"connection to {self.host}:{self.port} failed: {exc}"
                ) from exc
        reader = Reader(response)
        status = reader.u8()
        if status == wire.STATUS_OK:
            return reader
        error_class = reader.str()
        message = reader.str()
        if status == wire.STATUS_FATAL:
            # the server is about to close the connection; mirror that
            with self._lock:
                self._teardown()
        raise _rebuild_error(error_class, message)

    def _read_frame(self) -> bytes:
        prefix = self._read_exactly(4)
        return self._read_exactly(wire.split_frame_length(prefix))

    def _read_exactly(self, count: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            chunk = self._socket.recv(count - len(chunks))
            if not chunk:
                self._teardown()
                raise ProtocolError(
                    "server closed the connection mid-response "
                    f"({len(chunks)} of {count} bytes)"
                )
            chunks += chunk
        return bytes(chunks)

    def _teardown(self) -> None:
        self._closed = True
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - close never matters twice
            pass

    def close(self) -> None:
        """Close the connection (flushing any server-side ingest buffer)."""
        with self._lock:
            if self._closed:
                return
            self._teardown()

    def __enter__(self) -> "RemoteStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "connected"
        return f"RemoteStore({self.path!r}, {state})"

    # ------------------------------------------------------------------
    # the store surface
    # ------------------------------------------------------------------
    def session(self) -> "RemoteSession":
        """The connection's query session (state lives server-side)."""
        if self._session is None:
            self._session = RemoteSession(self)
        return self._session

    def list_runs(self, specification: Optional[str] = None) -> list[dict]:
        """Summaries of stored runs, optionally filtered by specification."""
        writer = Writer().put_bool(specification is not None)
        if specification is not None:
            writer.put_str(specification)
        return json.loads(self._request(wire.OP_LIST_RUNS, writer.getvalue()).str())

    def list_specifications(self) -> list[dict]:
        """Summaries of every stored specification."""
        return json.loads(self._request(wire.OP_LIST_SPECS).str())

    def statistics(self) -> dict:
        """Row counts per table on the server's store."""
        return json.loads(self._request(wire.OP_STATISTICS).str())

    def cache_stats(self) -> dict:
        """The server-side session/store cache statistics."""
        return json.loads(self._request(wire.OP_CACHE_STATS).str())

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest(self, labeled_runs: Iterable[Any], *, flush: bool = True) -> list[int]:
        """Ship labeled runs to the server's per-connection ingest buffer.

        With ``flush=True`` (the default) the buffer — these runs plus
        anything previously buffered — commits now and the assigned run
        ids come back in buffer order.  With ``flush=False`` the server
        holds them until the buffer reaches its threshold, an explicit
        :meth:`flush`, or disconnect; the returned list is then empty
        unless this request tripped the automatic flush.
        """
        from repro.workflow.serialization import run_to_json, specification_to_json

        entries = list(labeled_runs)
        writer = Writer().put_bool(flush).put_u32(len(entries))
        for labeled in entries:
            writer.put_str(labeled.spec_index.scheme_name)
            writer.put_str(specification_to_json(labeled.run.specification))
            writer.put_str(run_to_json(labeled.run))
        reader = self._request(wire.OP_INGEST, writer.getvalue())
        flushed = reader.bool()
        run_ids = [reader.i64() for _ in range(reader.u32())]
        if flushed:
            self._pending_ingest = 0
        else:
            self._pending_ingest += len(entries)
        return run_ids

    def flush(self) -> list[int]:
        """Commit the server-side ingest buffer; returns the new run ids."""
        reader = self._request(wire.OP_FLUSH)
        self._pending_ingest = 0
        return [reader.i64() for _ in range(reader.u32())]

    def add_labeled_runs(self, labeled_runs: Iterable[Any]) -> list[int]:
        """Store many labeled runs (synchronous: commits before returning).

        Any previously buffered ingest flushes first so the returned ids
        correspond to *labeled_runs* alone, in input order.
        """
        if self._pending_ingest:
            self.flush()
        return self.ingest(labeled_runs, flush=True)

    def add_labeled_run(self, labeled: Any) -> int:
        """Store one labeled run and return its id."""
        return self.add_labeled_runs([labeled])[0]

    @property
    def pending_ingest(self) -> int:
        """Client-side count of runs buffered but not yet flushed."""
        return self._pending_ingest


class _RemotePlan:
    """The compile-once handle of the remote session (re-sends on execute)."""

    def __init__(self, session: "RemoteSession", query: Any) -> None:
        self.session = session
        self.query = query

    def execute(self):
        return self.session.run(self.query)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_RemotePlan(query={self.query!r})"


class RemoteSession:
    """The :class:`~repro.api.ProvenanceSession` duck type over the wire.

    Each declarative query maps to one protocol op; the server answers it
    through a real per-connection session, so promotion and kernel state
    accumulate exactly as they would in-process.  ``compile`` returns a
    plan that re-sends the query — the expensive compiled state the plan
    represents lives (and persists) server-side.
    """

    target_kind = "store"

    def __init__(self, store: RemoteStore) -> None:
        self._store = store

    def run(self, query: Any):
        """Execute one declarative query on the server."""
        runner = self._RUNNERS.get(type(query))
        if runner is None:
            raise QueryPlanError(
                f"not a declarative query object: {type(query).__name__!r}"
            )
        return runner(self, query)

    def run_many(self, queries: Iterable[Any]) -> list:
        """Execute several queries in order (one round trip each)."""
        return [self.run(query) for query in queries]

    def compile(self, query: Any) -> _RemotePlan:
        """A reusable plan; the compiled state it reuses lives server-side."""
        if type(query) not in self._RUNNERS:
            raise QueryPlanError(
                f"not a declarative query object: {type(query).__name__!r}"
            )
        return _RemotePlan(self, query)

    def cache_stats(self) -> dict:
        """The server-side session statistics for this connection."""
        return self._store.cache_stats()

    # ------------------------------------------------------------------
    # per-query encoders
    # ------------------------------------------------------------------
    def _require_run_id(self, query: Any) -> int:
        if query.run_id is None:
            raise QueryPlanError(
                f"{type(query).__name__} against a store-backed session "
                "needs a run_id"
            )
        return int(query.run_id)

    def _run_point(self, query: PointQuery) -> bool:
        writer = Writer().put_i64(self._require_run_id(query))
        for module, instance in (
            _as_execution(query.source),
            _as_execution(query.target),
        ):
            writer.put_str(module).put_i64(instance)
        return self._store._request(wire.OP_POINT, writer.getvalue()).bool()

    def _run_batch(self, query: BatchQuery) -> list[bool]:
        run_id = self._require_run_id(query)
        if query.handle_native:
            # the zero-parse lane: the body is a pair-workload blob
            body = encode_pair_workload(
                query.source_ids, query.target_ids, run_id=run_id
            )
            return self._store._request(wire.OP_BATCH, body).bools()
        writer = Writer().put_i64(run_id).put_u32(len(query.pairs))
        for source, target in query.pairs:
            for module, instance in (_as_execution(source), _as_execution(target)):
                writer.put_str(module).put_i64(instance)
        return self._store._request(wire.OP_BATCH_PAIRS, writer.getvalue()).bools()

    def _run_sweep(self, query: Any, *, downstream: bool) -> list[tuple]:
        module, instance = _as_execution(query.execution)
        writer = (
            Writer()
            .put_i64(self._require_run_id(query))
            .put_bool(downstream)
            .put_str(module)
            .put_i64(instance)
        )
        wire.put_pushdown(writer, query.pushdown)
        return self._store._request(wire.OP_SWEEP, writer.getvalue()).executions()

    def _run_cross_sweep(self, query: CrossRunQuery) -> CrossRunSweepResult:
        anchor = _as_execution(query.execution)
        writer = Writer().put_str(query.specification)
        writer.put_str(anchor[0]).put_i64(anchor[1])
        writer.put_bool(query.direction == "downstream")
        wire.put_workers(writer, query.workers)
        wire.put_pushdown(writer, query.pushdown)
        reader = self._store._request(wire.OP_CROSS_SWEEP, writer.getvalue())
        return CrossRunSweepResult(
            specification=query.specification,
            execution=anchor,
            direction=query.direction,
            per_run=wire.read_run_map_executions(reader),
            skipped_runs=wire.read_skipped(reader),
        )

    def _cross_batch_round_trip(
        self, specification: str, pairs: Sequence[tuple], workers: Optional[int]
    ) -> tuple[dict, list[int]]:
        writer = Writer().put_str(specification).put_u32(len(pairs))
        for source, target in pairs:
            for module, instance in (source, target):
                writer.put_str(module).put_i64(instance)
        wire.put_workers(writer, workers)
        reader = self._store._request(wire.OP_CROSS_BATCH, writer.getvalue())
        return wire.read_run_map_bools(reader), wire.read_skipped(reader)

    def _run_cross_batch(self, query: CrossRunBatchQuery) -> CrossRunBatchResult:
        pairs = [
            (_as_execution(source), _as_execution(target))
            for source, target in query.pairs
        ]
        per_run, skipped = self._cross_batch_round_trip(
            query.specification, pairs, query.workers
        )
        return CrossRunBatchResult(
            specification=query.specification,
            pairs=pairs,
            per_run=per_run,
            skipped_runs=skipped,
        )

    def _run_cross_point(self, query: CrossRunPointQuery) -> CrossRunPointResult:
        # mirrors the in-process plan: a single-pair cross-run batch
        source = _as_execution(query.source)
        target = _as_execution(query.target)
        per_run, skipped = self._cross_batch_round_trip(
            query.specification, [(source, target)], query.workers
        )
        return CrossRunPointResult(
            specification=query.specification,
            source=source,
            target=target,
            per_run={run_id: bool(answers[0]) for run_id, answers in per_run.items()},
            skipped_runs=skipped,
        )

    def _run_data_dep(self, query: DataDependencyQuery) -> bool:
        writer = Writer().put_i64(self._require_run_id(query)).put_str(query.item)
        if query.on_module is not None:
            module, instance = _as_execution(query.on_module)
            writer.put_bool(True).put_str(module).put_i64(instance)
        else:
            writer.put_bool(False).put_str(query.on_item)
        return self._store._request(wire.OP_DATA_DEP, writer.getvalue()).bool()

    _RUNNERS = {
        PointQuery: _run_point,
        BatchQuery: _run_batch,
        DownstreamQuery: lambda self, query: self._run_sweep(query, downstream=True),
        UpstreamQuery: lambda self, query: self._run_sweep(query, downstream=False),
        CrossRunQuery: _run_cross_sweep,
        CrossRunBatchQuery: _run_cross_batch,
        CrossRunPointQuery: _run_cross_point,
        DataDependencyQuery: _run_data_dep,
    }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteSession(over {self._store.path!r})"


def _rebuild_error(error_class: str, message: str) -> ReproError:
    """Rehydrate a server-reported error as the matching local exception."""
    candidate = getattr(_exceptions, error_class, None)
    if isinstance(candidate, type) and issubclass(candidate, ReproError):
        try:
            return candidate(message)
        except TypeError:  # pragma: no cover - exotic constructor signatures
            pass
    return ReproError(f"{error_class}: {message}")

