"""The provenance network service: daemon, wire protocol, and client.

The in-process story ends at one machine; this package puts the store
behind a TCP socket so compiled plans are served where the data lives.

* :mod:`repro.server.protocol` — the length-prefixed binary wire format
  (the batch op reuses the pair-workload encoding byte for byte);
* :mod:`repro.server.daemon` — the asyncio server
  (:class:`ProvenanceServer`) and its background-thread wrapper
  (:class:`ServerThread`);
* :mod:`repro.server.client` — the blocking :class:`RemoteStore` /
  :class:`RemoteSession` duck types the CLI's ``repro://`` routing and
  the examples run against.
"""

from repro.server.client import RemoteSession, RemoteStore, is_remote_target, parse_url
from repro.server.daemon import (
    INGEST_FLUSH_AFTER_DEFAULT,
    MAX_INFLIGHT_DEFAULT,
    ProvenanceServer,
    ServerThread,
)
from repro.server.protocol import DEFAULT_PORT, MAX_FRAME_BYTES, PROTOCOL_VERSION

__all__ = [
    "ProvenanceServer",
    "ServerThread",
    "RemoteStore",
    "RemoteSession",
    "parse_url",
    "is_remote_target",
    "PROTOCOL_VERSION",
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "INGEST_FLUSH_AFTER_DEFAULT",
    "MAX_INFLIGHT_DEFAULT",
]
