"""Property-based cross-scheme equivalence suite.

Every registered labeling scheme must agree, pairwise and with the
``transitive_closure`` oracle, on random DAGs — through the per-pair API,
the ``reaches_many`` batch fast paths and the :class:`~repro.engine.QueryEngine`
(whatever kernel it compiles).  Random workflow specifications and runs then
check the same equivalences for the skeleton scheme layered over every
specification scheme.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.engine import QueryEngine
from repro.exceptions import DatasetError, GraphError, LabelingError
from repro.graphs.csr import CSRGraph
from repro.graphs.digraph import DiGraph
from repro.graphs.transitive_closure import transitive_closure
from repro.labeling.registry import available_schemes, build_index
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: every scheme that accepts arbitrary DAGs (interval is forest-only)
DAG_SCHEMES = tuple(sorted(set(available_schemes()) - {"interval"}))

#: specification schemes exercised under the skeleton labeler
SPEC_SCHEMES = ("tcm", "bfs", "dfs", "tree-cover", "chain", "2-hop")


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def random_dags(draw) -> DiGraph:
    """Random DAGs built edge-wise along a topological vertex order."""
    size = draw(st.integers(min_value=1, max_value=10))
    vertices = [f"v{i}" for i in range(size)]
    graph = DiGraph(vertices=vertices)
    for j in range(1, size):
        parent_count = draw(st.integers(min_value=0, max_value=min(3, j)))
        parents = draw(
            st.lists(
                st.integers(min_value=0, max_value=j - 1),
                min_size=parent_count,
                max_size=parent_count,
                unique=True,
            )
        )
        for i in parents:
            graph.add_edge(vertices[i], vertices[j])
    return graph


@st.composite
def random_forests(draw) -> DiGraph:
    """Random forests with edges directed from parents to children."""
    size = draw(st.integers(min_value=1, max_value=12))
    vertices = [f"v{i}" for i in range(size)]
    graph = DiGraph(vertices=vertices)
    for j in range(1, size):
        parent = draw(st.integers(min_value=-1, max_value=j - 1))
        if parent >= 0:
            graph.add_edge(vertices[parent], vertices[j])
    return graph


@st.composite
def specification_and_run(draw):
    """Random well-nested specification plus a generated conforming run."""
    hierarchy_size = draw(st.integers(min_value=1, max_value=5))
    if hierarchy_size == 1:
        depth = 1
    else:
        depth = draw(st.integers(min_value=2, max_value=min(3, hierarchy_size)))
    n_modules = draw(st.integers(min_value=10, max_value=30))
    extra_edges = draw(st.integers(min_value=0, max_value=n_modules // 2))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    config = SyntheticSpecConfig(
        n_modules=n_modules,
        n_edges=n_modules - 1 + extra_edges,
        hierarchy_size=hierarchy_size,
        hierarchy_depth=depth,
        seed=seed,
        name=f"engine-hypo-{seed}",
    )
    try:
        spec = generate_specification(config)
    except DatasetError:
        assume(False)
    if spec.hierarchy.size == 1:
        target = spec.vertex_count
    else:
        target = draw(
            st.integers(min_value=spec.vertex_count, max_value=4 * spec.vertex_count)
        )
    run_seed = draw(st.integers(min_value=0, max_value=10_000))
    return spec, generate_run_with_size(spec, target, seed=run_seed)


# ----------------------------------------------------------------------
# direct schemes on random DAGs
# ----------------------------------------------------------------------
@given(random_dags())
@SLOW
def test_every_dag_scheme_matches_the_closure_oracle(graph: DiGraph):
    closure = transitive_closure(graph)
    vertices = graph.vertices()
    pairs = [(u, v) for u in vertices for v in vertices]
    oracle = [closure.reaches(u, v) for u, v in pairs]
    for scheme in DAG_SCHEMES:
        index = build_index(scheme, graph)
        assert [index.reaches(u, v) for u, v in pairs] == oracle, scheme
        # the batch fast path must agree with the per-pair path
        label_pairs = [(index.label_of(u), index.label_of(v)) for u, v in pairs]
        assert [bool(a) for a in index.reaches_many(label_pairs)] == oracle, scheme
        # and so must the engine, whatever kernel it compiled
        engine = QueryEngine(index)
        assert [bool(a) for a in engine.reaches_batch(pairs)] == oracle, scheme


@given(random_forests())
@SLOW
def test_interval_scheme_matches_the_closure_oracle_on_forests(forest: DiGraph):
    closure = transitive_closure(forest)
    vertices = forest.vertices()
    pairs = [(u, v) for u in vertices for v in vertices]
    oracle = [closure.reaches(u, v) for u, v in pairs]
    index = build_index("interval", forest)
    assert [index.reaches(u, v) for u, v in pairs] == oracle
    engine = QueryEngine(index)
    assert [bool(a) for a in engine.reaches_batch(pairs)] == oracle


@given(random_dags())
@SLOW
def test_interval_scheme_rejects_non_forests_consistently(graph: DiGraph):
    is_forest = all(graph.in_degree(v) <= 1 for v in graph.vertices())
    if is_forest:
        build_index("interval", graph)
    else:
        try:
            build_index("interval", graph)
        except (GraphError, LabelingError):
            pass
        else:
            raise AssertionError("interval accepted a non-forest DAG")


@given(random_dags())
@SLOW
def test_csr_round_trip_preserves_random_dags(graph: DiGraph):
    csr = CSRGraph.from_digraph(graph)
    assert csr.vertices() == graph.vertices()
    assert csr.edges() == graph.edges()
    assert csr.to_digraph() == graph
    closure = transitive_closure(graph)
    for vertex in graph.vertices():
        reached = {
            csr.vertex_at(i) for i in csr.reachable_ids(csr.id_of(vertex))
        }
        assert reached == closure.reachable_set(vertex)


# ----------------------------------------------------------------------
# the skeleton scheme over random specifications and runs
# ----------------------------------------------------------------------
@given(specification_and_run(), st.integers(min_value=0, max_value=10_000))
@SLOW
def test_skeleton_scheme_agrees_across_spec_schemes_and_batch(
    spec_and_run, query_seed
):
    spec, generated = spec_and_run
    run = generated.run
    closure = transitive_closure(run.graph)
    vertices = run.vertices()
    rng = random.Random(query_seed)
    pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(120)]
    oracle = [closure.reaches(u, v) for u, v in pairs]
    for scheme in SPEC_SCHEMES:
        labeled = SkeletonLabeler(spec, scheme).label_run(
            run, plan=generated.plan, context=generated.context
        )
        assert [labeled.reaches(u, v) for u, v in pairs] == oracle, scheme
        engine = QueryEngine(labeled)
        assert [bool(a) for a in engine.reaches_batch(pairs)] == oracle, scheme


@given(specification_and_run(), st.integers(min_value=0, max_value=10_000))
@SLOW
def test_engine_point_queries_match_batch(spec_and_run, query_seed):
    spec, generated = spec_and_run
    labeled = SkeletonLabeler(spec, "tcm").label_run(
        generated.run, plan=generated.plan, context=generated.context
    )
    engine = QueryEngine(labeled, cache_size=16)
    vertices = generated.run.vertices()
    rng = random.Random(query_seed)
    pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(80)]
    batched = engine.reaches_batch(pairs)
    pointwise = [engine.reaches(u, v) for u, v in pairs]
    assert [bool(a) for a in batched] == [bool(a) for a in pointwise]
