"""Integration tests for the provenance network service.

Covers the wire protocol codecs, the HELLO handshake, bit-identical
answers for every query op against an in-process session, recoverable vs
fatal error handling (malformed and truncated frames must produce a
protocol error and a closed connection, never a hang), the buffered
ingest path (explicit flush, auto-flush threshold, flush-at-disconnect),
concurrent clients against a sharded store, ingest-during-query
consistency, clean shutdown with inflight requests, and the CLI's
``repro://`` routing.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro.api import (
    BatchQuery,
    CrossRunBatchQuery,
    CrossRunPointQuery,
    CrossRunQuery,
    DataDependencyQuery,
    DownstreamQuery,
    PointQuery,
    ProvenanceSession,
    UpstreamQuery,
)
from repro.exceptions import ProtocolError, QueryPlanError, ReproError, StorageError
from repro.provenance.data import DataFlow
from repro.server import (
    PROTOCOL_VERSION,
    ProvenanceServer,
    RemoteStore,
    ServerThread,
    is_remote_target,
    parse_url,
)
from repro.server import protocol as wire
from repro.server.protocol import Reader, Writer, frame
from repro.storage.sharded import ShardedProvenanceStore
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size
from repro.workflow.run import RunVertex


@pytest.fixture()
def served(tmp_path, paper_spec, paper_labeler, paper_run):
    """A sharded store with three runs behind a ServerThread, plus a client."""
    store = ShardedProvenanceStore(tmp_path / "served", 2)
    labeled = [paper_labeler.label_run(paper_run)]
    for seed in (1, 2):
        generated = generate_run_with_size(
            paper_spec, 24, seed=seed, name=f"served-{seed}"
        )
        labeled.append(paper_labeler.label_run(generated.run))
    run_ids = store.add_labeled_runs(labeled)
    with ServerThread(store) as server:
        with RemoteStore(server.url) as client:
            yield store, run_ids, server, client
    store.close()


def _raw_exchange(server, payloads, *, read_responses=1):
    """Speak raw bytes to the server; returns the response frames read."""
    responses = []
    with socket.create_connection((server.host, server.port), timeout=10) as sock:
        # handshake (v3: version + client id) so the failure under test is
        # the interesting frame
        sock.sendall(
            frame(
                bytes([wire.OP_HELLO])
                + Writer().put_u32(PROTOCOL_VERSION).put_str("raw-test").getvalue()
            )
        )
        _read_frame(sock)
        for payload in payloads:
            sock.sendall(payload)
        try:
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        for _ in range(read_responses):
            responses.append(_read_frame(sock))
        # after a fatal frame the server must close: recv returns EOF,
        # it does not hang
        assert sock.recv(4096) == b""
    return responses


def _read_frame(sock):
    prefix = b""
    while len(prefix) < 4:
        chunk = sock.recv(4 - len(prefix))
        assert chunk, "server closed before sending a full frame"
        prefix += chunk
    (length,) = struct.unpack("<I", prefix)
    payload = b""
    while len(payload) < length:
        chunk = sock.recv(length - len(payload))
        assert chunk, "server closed mid-frame"
        payload += chunk
    return payload


class TestWireCodecs:
    def test_frame_round_trip(self):
        payload = b"\x01hello"
        framed = frame(payload)
        assert wire.split_frame_length(framed[:4]) == len(payload)
        assert framed[4:] == payload

    def test_oversized_frame_rejected_both_ways(self):
        with pytest.raises(ProtocolError):
            wire.split_frame_length(struct.pack("<I", wire.MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError):
            wire.split_frame_length(b"\x01\x02")

    def test_writer_reader_round_trip(self):
        writer = (
            Writer()
            .put_u8(7)
            .put_bool(True)
            .put_u32(1234)
            .put_i64(-99)
            .put_str("héllo")
            .put_bools([True, False, True])
            .put_executions([("m1", 2), ("m2", 3)])
        )
        reader = Reader(writer.getvalue())
        assert reader.u8() == 7
        assert reader.bool() is True
        assert reader.u32() == 1234
        assert reader.i64() == -99
        assert reader.str() == "héllo"
        assert reader.bools() == [True, False, True]
        assert reader.executions() == [("m1", 2), ("m2", 3)]
        reader.expect_end()

    def test_run_maps_and_workers_round_trip(self):
        writer = Writer()
        wire.put_run_map_executions(writer, {3: [("a", 1)], 9: []})
        wire.put_run_map_bools(writer, {3: [True, False]})
        wire.put_skipped(writer, [5, 6])
        wire.put_workers(writer, None)
        wire.put_workers(writer, 4)
        reader = Reader(writer.getvalue())
        assert wire.read_run_map_executions(reader) == {3: [("a", 1)], 9: []}
        assert wire.read_run_map_bools(reader) == {3: [True, False]}
        assert wire.read_skipped(reader) == [5, 6]
        assert wire.read_workers(reader) is None
        assert wire.read_workers(reader) == 4

    def test_truncated_payload_raises_protocol_error(self):
        reader = Reader(Writer().put_u32(10).getvalue())
        with pytest.raises(ProtocolError, match="truncated"):
            reader.str()

    def test_trailing_bytes_raise(self):
        reader = Reader(b"\x01\x02")
        reader.u8()
        with pytest.raises(ProtocolError, match="trailing"):
            reader.expect_end()

    def test_invalid_utf8_raises(self):
        blob = Writer().put_u32(2).getvalue() + b"\xff\xfe"
        with pytest.raises(ProtocolError, match="UTF-8"):
            Reader(blob).str()

    def test_url_helpers(self):
        assert is_remote_target("repro://host:1/") and not is_remote_target("/a/b")
        assert parse_url("repro://example:4321/") == ("example", 4321)
        assert parse_url("repro://example/") == ("example", wire.DEFAULT_PORT)
        with pytest.raises(ProtocolError):
            parse_url("http://example/")


class TestHandshakeAndSurface:
    def test_hello_pins_version_and_reports_store(self, served):
        _, _, server, client = served
        assert client.server_protocol == PROTOCOL_VERSION
        assert client.path.startswith(f"repro://{server.host}:{server.port}")
        assert client.sharded is True

    def test_version_mismatch_is_fatal(self, served):
        _, _, server, _ = served
        bad_hello = frame(bytes([wire.OP_HELLO]) + struct.pack("<I", 999))
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(bad_hello)
            response = _read_frame(sock)
            assert response[0] == wire.STATUS_FATAL
            assert sock.recv(4096) == b""

    def test_store_surface_matches(self, served):
        store, _, _, client = served
        assert client.list_runs() == store.list_runs()
        assert client.list_runs("paper-example") == store.list_runs("paper-example")
        assert client.list_specifications() == store.list_specifications()
        assert client.statistics() == store.statistics()
        stats = client.cache_stats()
        assert stats["server"]["connections"] >= 1

    def test_every_query_op_is_bit_identical(self, served, paper_run, paper_spec):
        store, run_ids, _, client = served
        local = ProvenanceSession(store)
        remote = client.session()
        run_id = run_ids[0]
        vertices = paper_run.vertices()
        pairs = [(u, v) for u in vertices[:5] for v in vertices[:5]]

        for source, target in pairs[:8]:
            query = PointQuery(source, target, run_id=run_id)
            assert remote.run(query) == local.run(query)
        batch = BatchQuery(pairs=pairs, run_id=run_id)
        assert remote.run(batch) == local.run(batch)
        engine = store.query_engine(run_id)
        source_ids, target_ids = engine.intern_pairs(
            [((u.module, u.instance), (v.module, v.instance)) for u, v in pairs]
        )
        handles = BatchQuery(
            source_ids=source_ids, target_ids=target_ids, run_id=run_id
        )
        assert remote.run(handles) == local.run(handles)
        for query in (
            DownstreamQuery(("a", 1), run_id=run_id),
            UpstreamQuery(("h", 1), run_id=run_id),
        ):
            assert remote.run(query) == local.run(query)
        sweep = CrossRunQuery(paper_spec.name, ("a", 1))
        assert remote.run(sweep) == local.run(sweep)
        cross_batch = CrossRunBatchQuery(paper_spec.name, pairs[:4])
        assert remote.run(cross_batch) == local.run(cross_batch)
        cross_point = CrossRunPointQuery(paper_spec.name, ("a", 1), ("h", 1))
        assert remote.run(cross_point) == local.run(cross_point)

    def test_data_dependency_over_the_wire(self, served, paper_run):
        store, run_ids, _, client = served
        flow = DataFlow(run=paper_run)
        flow.attach(RunVertex("a", 1), RunVertex("b", 1), ["item-a"])
        flow.attach(RunVertex("c", 1), RunVertex("b", 2), ["item-b"])
        store.add_dataflow(run_ids[0], flow)
        local = ProvenanceSession(store)
        remote = client.session()
        for query in (
            DataDependencyQuery("item-b", on_item="item-a", run_id=run_ids[0]),
            DataDependencyQuery("item-b", on_module=("a", 1), run_id=run_ids[0]),
        ):
            assert remote.run(query) == local.run(query)

    def test_run_many_and_compiled_plan(self, served):
        _, run_ids, _, client = served
        session = client.session()
        queries = [
            PointQuery(("a", 1), ("h", 1), run_id=run_ids[0]),
            DownstreamQuery(("a", 1), run_id=run_ids[0]),
        ]
        first, second = session.run_many(queries)
        plan = session.compile(queries[0])
        assert plan.execute() == first
        assert session.run(queries[1]) == second

    def test_remote_session_rejects_non_queries(self, served):
        _, _, _, client = served
        with pytest.raises(QueryPlanError):
            client.session().run(object())
        with pytest.raises(QueryPlanError):
            client.session().compile("nope")

    def test_missing_run_id_raises_before_any_round_trip(self, served):
        _, _, _, client = served
        with pytest.raises(QueryPlanError, match="needs a run_id"):
            client.session().run(PointQuery(("a", 1), ("h", 1)))


class TestErrorHandling:
    def test_store_errors_are_recoverable(self, served):
        _, run_ids, _, client = served
        session = client.session()
        with pytest.raises(StorageError):
            session.run(PointQuery(("a", 1), ("h", 1), run_id=999_999))
        # the connection survives a recoverable error
        assert session.run(PointQuery(("a", 1), ("h", 1), run_id=run_ids[0])) is True

    def test_error_class_is_rehydrated(self, served):
        _, _, _, client = served
        with pytest.raises(StorageError):
            client.session().run(PointQuery(("a", 1), ("h", 1), run_id=999_999))

    def test_unknown_opcode_is_fatal_not_a_hang(self, served):
        _, _, server, _ = served
        (response,) = _raw_exchange(server, [frame(bytes([255]))])
        assert response[0] == wire.STATUS_FATAL
        reader = Reader(response[1:])
        assert reader.str() == "ProtocolError"
        assert "opcode" in reader.str()

    def test_truncated_frame_is_fatal_not_a_hang(self, served):
        _, _, server, _ = served
        # announce 100 payload bytes, deliver 5, then half-close
        (response,) = _raw_exchange(
            server, [struct.pack("<I", 100) + b"\x01\x02\x03\x04\x05"]
        )
        assert response[0] == wire.STATUS_FATAL

    def test_oversized_announced_frame_is_fatal(self, served):
        _, _, server, _ = served
        (response,) = _raw_exchange(server, [struct.pack("<I", 0xFFFFFFFF)])
        assert response[0] == wire.STATUS_FATAL

    def test_malformed_op_body_is_fatal(self, served):
        _, _, server, _ = served
        # OP_POINT with a truncated body: the Reader hits the end mid-field
        (response,) = _raw_exchange(server, [frame(bytes([wire.OP_POINT, 1, 2]))])
        assert response[0] == wire.STATUS_FATAL

    def test_bad_batch_blob_is_fatal(self, served):
        _, _, server, _ = served
        (response,) = _raw_exchange(
            server, [frame(bytes([wire.OP_BATCH]) + b"not-a-workload")]
        )
        assert response[0] == wire.STATUS_FATAL

    def test_server_survives_a_fatal_connection(self, served):
        _, run_ids, server, client = served
        _raw_exchange(server, [frame(bytes([255]))])
        # existing and new connections keep working
        assert client.session().run(
            PointQuery(("a", 1), ("h", 1), run_id=run_ids[0])
        ) is True
        with RemoteStore(server.url) as fresh:
            assert fresh.list_runs() == client.list_runs()

    def test_closed_client_raises_cleanly(self, served):
        _, run_ids, server, _ = served
        client = RemoteStore(server.url)
        session = client.session()
        client.close()
        with pytest.raises(ProtocolError, match="closed"):
            session.run(PointQuery(("a", 1), ("h", 1), run_id=run_ids[0]))

    def test_connect_to_dead_server_raises(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        with pytest.raises(ProtocolError, match="could not connect"):
            RemoteStore(host="127.0.0.1", port=port, timeout=2.0)


class TestIngest:
    def test_immediate_ingest_returns_input_order_ids(
        self, served, paper_spec, paper_labeler
    ):
        store, _, _, client = served
        labeled = [
            paper_labeler.label_run(
                generate_run_with_size(
                    paper_spec, 20, seed=50 + index, name=f"pushed-{index}"
                ).run
            )
            for index in range(3)
        ]
        before = len(store.list_runs())
        run_ids = client.add_labeled_runs(labeled)
        assert len(run_ids) == 3
        names = {row["run_id"]: row["name"] for row in store.list_runs()}
        assert [names[run_id] for run_id in run_ids] == [
            "pushed-0",
            "pushed-1",
            "pushed-2",
        ]
        assert len(store.list_runs()) == before + 3
        # the ingested runs answer queries like locally stored ones
        local = ProvenanceSession(store)
        remote = client.session()
        anchor = labeled[0].run.vertices()[0]
        query = DownstreamQuery(anchor, run_id=run_ids[0])
        assert remote.run(query) == local.run(query)

    def test_buffered_ingest_flushes_on_request(
        self, served, paper_spec, paper_labeler
    ):
        store, _, _, client = served
        labeled = paper_labeler.label_run(
            generate_run_with_size(paper_spec, 20, seed=60, name="buffered").run
        )
        before = len(store.list_runs())
        assert client.ingest([labeled], flush=False) == []
        assert client.pending_ingest == 1
        assert len(store.list_runs()) == before  # not committed yet
        (run_id,) = client.flush()
        assert client.pending_ingest == 0
        assert any(row["run_id"] == run_id for row in store.list_runs())

    def test_auto_flush_at_threshold(self, tmp_path, paper_spec, paper_labeler):
        store = ShardedProvenanceStore(tmp_path / "auto", 2)
        labeled = [
            paper_labeler.label_run(
                generate_run_with_size(
                    paper_spec, 20, seed=70 + index, name=f"auto-{index}"
                ).run
            )
            for index in range(2)
        ]
        with ServerThread(store, ingest_flush_after=2) as server:
            with RemoteStore(server.url) as client:
                assert client.ingest([labeled[0]], flush=False) == []
                # the second entry fills the buffer: both commit, in order
                run_ids = client.ingest([labeled[1]], flush=False)
                assert len(run_ids) == 2
                names = {row["run_id"]: row["name"] for row in client.list_runs()}
                assert [names[run_id] for run_id in run_ids] == ["auto-0", "auto-1"]
        store.close()

    def test_disconnect_flushes_buffered_ingest(
        self, served, paper_spec, paper_labeler
    ):
        store, _, server, _ = served
        labeled = paper_labeler.label_run(
            generate_run_with_size(paper_spec, 20, seed=80, name="orphaned").run
        )
        with RemoteStore(server.url) as writer:
            writer.ingest([labeled], flush=False)
        # the flush happens on the server's store thread after disconnect;
        # observe it through a second client so all store access stays on
        # that thread
        with RemoteStore(server.url) as probe:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if any(row["name"] == "orphaned" for row in probe.list_runs()):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("buffered ingest was dropped at disconnect")


class TestConcurrencyAndShutdown:
    def test_concurrent_clients_are_bit_identical(self, served, paper_run):
        store, run_ids, server, _ = served
        local = ProvenanceSession(store)
        vertices = paper_run.vertices()
        pairs = [(u, v) for u in vertices[:4] for v in vertices[:4]]
        expected_batch = local.run(BatchQuery(pairs=pairs, run_id=run_ids[0]))
        expected_sweep = local.run(DownstreamQuery(("a", 1), run_id=run_ids[0]))
        failures = []

        def worker(index):
            try:
                with RemoteStore(server.url) as client:
                    session = client.session()
                    for _ in range(5):
                        got = session.run(BatchQuery(pairs=pairs, run_id=run_ids[0]))
                        if got != expected_batch:
                            raise AssertionError("batch diverged")
                        got = session.run(
                            DownstreamQuery(("a", 1), run_id=run_ids[0])
                        )
                        if got != expected_sweep:
                            raise AssertionError("sweep diverged")
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                failures.append((index, exc))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures

    def test_queries_stay_consistent_during_ingest(
        self, served, paper_spec, paper_labeler, paper_run
    ):
        store, run_ids, server, client = served
        local = ProvenanceSession(store)
        expected = local.run(DownstreamQuery(("a", 1), run_id=run_ids[0]))
        labeled = [
            paper_labeler.label_run(
                generate_run_with_size(
                    paper_spec, 20, seed=90 + index, name=f"during-{index}"
                ).run
            )
            for index in range(4)
        ]

        def writer_worker():
            with RemoteStore(server.url) as writer:
                for item in labeled:
                    writer.add_labeled_run(item)

        thread = threading.Thread(target=writer_worker)
        thread.start()
        session = client.session()
        while thread.is_alive():
            assert session.run(
                DownstreamQuery(("a", 1), run_id=run_ids[0])
            ) == expected
        thread.join(timeout=60)
        names = {row["name"] for row in client.list_runs()}
        assert {f"during-{index}" for index in range(4)} <= names

    def test_clean_shutdown_answers_inflight_requests(
        self, tmp_path, paper_labeler, paper_run
    ):
        store = ShardedProvenanceStore(tmp_path / "drain", 2)
        (run_id,) = store.add_labeled_runs([paper_labeler.label_run(paper_run)])
        server = ServerThread(store).start()
        client = RemoteStore(server.url)
        session = client.session()
        expected = session.run(DownstreamQuery(("a", 1), run_id=run_id))
        answers, errors = [], []

        def hammer():
            try:
                for _ in range(200):
                    answers.append(
                        session.run(DownstreamQuery(("a", 1), run_id=run_id))
                    )
            except ProtocolError:
                # the server stopped accepting: fine, but never a hang and
                # never a wrong answer
                pass
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        thread = threading.Thread(target=hammer)
        thread.start()
        time.sleep(0.05)  # let some requests get inflight
        server.stop()
        thread.join(timeout=60)
        assert not thread.is_alive(), "shutdown hung an inflight client"
        assert not errors
        assert answers and all(answer == expected for answer in answers)
        client.close()
        store.close()


class TestLifecycle:
    def test_server_takes_exactly_one_of_store_or_path(self, tmp_path):
        with pytest.raises(ValueError):
            ProvenanceServer()
        store = ProvenanceStore(tmp_path / "both.db")
        with pytest.raises(ValueError):
            ProvenanceServer(store, path=tmp_path / "other.db")
        with pytest.raises(ValueError):
            ProvenanceServer(store, max_inflight=0)
        with pytest.raises(ValueError):
            ProvenanceServer(store, ingest_flush_after=0)
        store.close()

    def test_path_owned_store_opens_and_closes_with_the_server(
        self, tmp_path, paper_labeler, paper_run
    ):
        path = tmp_path / "owned"
        with ServerThread(path=path, shards=2) as server:
            with RemoteStore(server.url) as client:
                client.add_labeled_run(paper_labeler.label_run(paper_run))
                assert client.sharded is True
        # the server closed its store on stop; the data is on disk and the
        # layout is reusable directly
        from repro.storage.sharded import open_store

        with open_store(path) as reopened:
            assert [row["name"] for row in reopened.list_runs()] == ["figure-3"]

    def test_caller_owned_store_stays_open_after_stop(
        self, tmp_path, paper_labeler, paper_run
    ):
        store = ShardedProvenanceStore(tmp_path / "kept", 2)
        store.add_labeled_runs([paper_labeler.label_run(paper_run)])
        with ServerThread(store):
            pass
        assert not store.closed
        assert len(store.list_runs()) == 1
        store.close()

    def test_cli_routes_repro_urls(self, served, capsys):
        from repro.cli import main

        _, run_ids, server, _ = served
        assert (
            main(
                [
                    "query",
                    "--database",
                    server.url,
                    "--run-id",
                    str(run_ids[0]),
                    "--source",
                    "a:1",
                    "--target",
                    "h:1",
                ]
            )
            == 0
        )
        assert "reaches" in capsys.readouterr().out
        assert (
            main(
                [
                    "sweep",
                    "--database",
                    server.url,
                    "--spec",
                    "paper-example",
                    "--source",
                    "a:1",
                    "--summary-only",
                ]
            )
            == 0
        )
        assert "swept" in capsys.readouterr().out

    def test_cli_pack_workload_rejects_remote_targets(self, served, capsys):
        from repro.cli import main

        _, _, server, _ = served
        assert (
            main(
                [
                    "pack-workload",
                    "--database",
                    server.url,
                    "--run-id",
                    "1",
                    "--pairs",
                    "-",
                    "--output",
                    "ignored.bin",
                ]
            )
            == 2
        )
        assert "interner" in capsys.readouterr().err
