"""Shared fixtures: the paper's running example and common synthetic workloads."""

from __future__ import annotations

import random

import pytest

from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size
from repro.workflow.run import RunVertex, WorkflowRun
from repro.workflow.specification import WorkflowSpecification


def make_paper_specification() -> WorkflowSpecification:
    """The specification of Figure 2: chain a-b-c-h and a-d-e-f-g-h with F1, F2, L1, L2."""
    return WorkflowSpecification.from_edges(
        edges=[
            ("a", "b"), ("b", "c"), ("c", "h"),
            ("a", "d"), ("d", "e"), ("e", "f"), ("f", "g"), ("g", "h"),
        ],
        forks=[("F1", {"b", "c"}), ("F2", {"f"})],
        loops=[("L1", {"e", "f", "g"}), ("L2", {"b", "c"})],
        name="paper-example",
    )


def make_paper_run(spec: WorkflowSpecification) -> WorkflowRun:
    """The run of Figure 3 (16 vertices, F1 twice, L2 twice/once, L1 twice, F2 once/twice)."""
    edges = [
        (("a", 1), ("b", 1)), (("b", 1), ("c", 1)), (("c", 1), ("b", 2)),
        (("b", 2), ("c", 2)), (("c", 2), ("h", 1)),
        (("a", 1), ("b", 3)), (("b", 3), ("c", 3)), (("c", 3), ("h", 1)),
        (("a", 1), ("d", 1)), (("d", 1), ("e", 1)), (("e", 1), ("f", 1)),
        (("f", 1), ("g", 1)), (("g", 1), ("e", 2)), (("e", 2), ("f", 2)),
        (("e", 2), ("f", 3)), (("f", 2), ("g", 2)), (("f", 3), ("g", 2)),
        (("g", 2), ("h", 1)),
    ]
    return WorkflowRun.from_edges(spec, edges, name="figure-3")


@pytest.fixture(scope="session")
def paper_spec() -> WorkflowSpecification:
    """Session-scoped Figure 2 specification."""
    return make_paper_specification()


@pytest.fixture(scope="session")
def paper_run(paper_spec: WorkflowSpecification) -> WorkflowRun:
    """Session-scoped Figure 3 run."""
    return make_paper_run(paper_spec)


@pytest.fixture(scope="session")
def paper_labeler(paper_spec: WorkflowSpecification) -> SkeletonLabeler:
    """Skeleton labeler over the paper specification with TCM skeleton labels."""
    return SkeletonLabeler(paper_spec, "tcm")


@pytest.fixture(scope="session")
def paper_labeled_run(paper_labeler: SkeletonLabeler, paper_run: WorkflowRun):
    """The Figure 3 run labeled with TCM+SKL."""
    return paper_labeler.label_run(paper_run)


@pytest.fixture(scope="session")
def synthetic_spec() -> WorkflowSpecification:
    """A mid-size synthetic specification (nG=60, mG=110, |TG|=8, [TG]=3)."""
    return generate_specification(
        SyntheticSpecConfig(
            n_modules=60, n_edges=110, hierarchy_size=8, hierarchy_depth=3,
            name="synthetic-60", seed=7,
        )
    )


@pytest.fixture(scope="session")
def synthetic_run(synthetic_spec: WorkflowSpecification):
    """A generated run of about 800 vertices with its ground-truth plan."""
    return generate_run_with_size(synthetic_spec, 800, seed=13, name="synthetic-run")


@pytest.fixture()
def rng() -> random.Random:
    """A deterministic random generator for per-test sampling."""
    return random.Random(0xC0FFEE)


def vertex(module: str, instance: int) -> RunVertex:
    """Shorthand used across tests."""
    return RunVertex(module, instance)
