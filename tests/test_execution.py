"""Unit tests for run generation: profiles, plan building and materialization."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import DatasetError
from repro.graphs.traversal import is_dag
from repro.workflow.execution import (
    ConstantProfile,
    PerRegionProfile,
    RangeProfile,
    build_plan,
    generate_run,
    generate_run_with_size,
    grow_plan_to_size,
    materialize_plan,
    minimal_expansion_sizes,
    own_edges,
    owned_vertices,
)
from repro.workflow.hierarchy import ROOT_NAME
from repro.workflow.plan import PlanNodeKind
from repro.workflow.run import RunVertex
from repro.workflow.specification import WorkflowSpecification


class TestProfiles:
    def test_constant_profile(self, rng):
        assert ConstantProfile(3).copies("F1", rng) == 3

    def test_constant_profile_rejects_zero(self, rng):
        with pytest.raises(DatasetError):
            ConstantProfile(0).copies("F1", rng)

    def test_range_profile_within_bounds(self, rng):
        profile = RangeProfile(2, 5)
        for _ in range(50):
            assert 2 <= profile.copies("L1", rng) <= 5

    def test_range_profile_invalid_bounds(self, rng):
        with pytest.raises(DatasetError):
            RangeProfile(0, 3).copies("L1", rng)
        with pytest.raises(DatasetError):
            RangeProfile(5, 2).copies("L1", rng)

    def test_per_region_profile(self, rng):
        profile = PerRegionProfile({"F1": 4}, default=2)
        assert profile.copies("F1", rng) == 4
        assert profile.copies("L1", rng) == 2

    def test_per_region_profile_rejects_zero(self, rng):
        with pytest.raises(DatasetError):
            PerRegionProfile({"F1": 0}).copies("F1", rng)


class TestStructuralHelpers:
    def test_owned_vertices_paper(self, paper_spec):
        owned = owned_vertices(paper_spec)
        assert owned[ROOT_NAME] == {"a", "d", "h"}
        assert owned["F1"] == frozenset()          # everything inside L2
        assert owned["L2"] == {"b", "c"}
        assert owned["L1"] == {"e", "g"}
        assert owned["F2"] == {"f"}

    def test_owned_vertices_partition(self, paper_spec):
        owned = owned_vertices(paper_spec)
        union = set()
        total = 0
        for vertices in owned.values():
            union |= vertices
            total += len(vertices)
        assert union == set(paper_spec.modules)
        assert total == paper_spec.vertex_count  # disjoint partition

    def test_own_edges_partition(self, paper_spec):
        edges = own_edges(paper_spec)
        union = set()
        total = 0
        for edge_set in edges.values():
            union |= edge_set
            total += len(edge_set)
        assert union == set(paper_spec.graph.iter_edges())
        assert total == paper_spec.edge_count

    def test_minimal_expansion_sizes(self, paper_spec):
        sizes = minimal_expansion_sizes(paper_spec)
        assert sizes["L2"] == 2
        assert sizes["F2"] == 1
        assert sizes["F1"] == 2       # owns nothing, contains L2
        assert sizes["L1"] == 3       # e, g + F2
        assert sizes[ROOT_NAME] == paper_spec.vertex_count


class TestBuildPlan:
    def test_minimal_plan_structure(self, paper_spec):
        plan = build_plan(paper_spec, ConstantProfile(1))
        plan.validate()
        assert plan.copies_per_region() == {"F1": 1, "L2": 1, "L1": 1, "F2": 1}
        assert plan.groups_per_region() == {"F1": 1, "L2": 1, "L1": 1, "F2": 1}

    def test_constant_two_plan(self, paper_spec):
        plan = build_plan(paper_spec, ConstantProfile(2), random.Random(0))
        plan.validate()
        copies = plan.copies_per_region()
        assert copies["F1"] == 2
        # L2 appears once in each of the two F1 copies, twice each time
        assert copies["L2"] == 4

    def test_nested_group_counts(self, paper_spec):
        plan = build_plan(paper_spec, PerRegionProfile({"F1": 3}, default=1))
        groups = plan.groups_per_region()
        assert groups["F1"] == 1
        assert groups["L2"] == 3  # one L2 execution per F1 copy


class TestMaterialization:
    def test_identity_run_matches_spec(self, paper_spec):
        plan = build_plan(paper_spec, ConstantProfile(1))
        generated = materialize_plan(paper_spec, plan)
        run = generated.run
        assert run.vertex_count == paper_spec.vertex_count
        assert run.edge_count == paper_spec.edge_count
        origins = {(t.module, h.module) for t, h in run.graph.iter_edges()}
        assert origins == set(paper_spec.graph.iter_edges())

    def test_generated_run_is_dag_flow_network(self, paper_spec):
        generated = generate_run(paper_spec, ConstantProfile(3), seed=5)
        assert is_dag(generated.run.graph)
        assert generated.run.source.module == "a"
        assert generated.run.sink.module == "h"

    def test_context_covers_every_vertex(self, paper_spec):
        generated = generate_run(paper_spec, ConstantProfile(2), seed=5)
        assert set(generated.context) == set(generated.run.vertices())
        plus_ids = {n.node_id for n in generated.plan.plus_nodes()}
        assert set(generated.context.values()) <= plus_ids

    def test_instance_numbers_unique_per_module(self, paper_spec):
        generated = generate_run(paper_spec, ConstantProfile(3), seed=1)
        seen: set[RunVertex] = set()
        for vertex in generated.run.vertices():
            assert vertex not in seen
            seen.add(vertex)

    def test_fork_copies_share_terminals(self, paper_spec):
        generated = generate_run(paper_spec, PerRegionProfile({"F1": 4}, default=1), seed=2)
        run = generated.run
        # all four F1 copies hang off the single a1 / h1 pair
        assert len(run.instances_of("a")) == 1
        assert len(run.instances_of("h")) == 1
        assert len(run.instances_of("b")) == 4

    def test_loop_copies_chain_serially(self, paper_spec):
        generated = generate_run(paper_spec, PerRegionProfile({"L1": 3}, default=1), seed=2)
        run = generated.run
        # three L1 copies -> three e's and three g's, connected g_i -> e_{i+1}
        assert len(run.instances_of("e")) == 3
        assert len(run.instances_of("g")) == 3
        serial_edges = [
            (t, h) for t, h in run.graph.iter_edges()
            if t.module == "g" and h.module == "e"
        ]
        assert len(serial_edges) == 2

    def test_paper_figure3_shape_reproducible(self, paper_spec):
        """A plan with the Figure 3 copy counts yields a 16-vertex run."""
        from repro.workflow.plan import ExecutionPlan

        plan = ExecutionPlan()
        root = plan.add_root()
        f1_group = plan.add_node(PlanNodeKind.FORK_GROUP, "F1", parent=root)
        copy_one = plan.add_node(PlanNodeKind.FORK_COPY, "F1", parent=f1_group)
        copy_two = plan.add_node(PlanNodeKind.FORK_COPY, "F1", parent=f1_group)
        l2_first = plan.add_node(PlanNodeKind.LOOP_GROUP, "L2", parent=copy_one)
        plan.add_node(PlanNodeKind.LOOP_COPY, "L2", parent=l2_first)
        plan.add_node(PlanNodeKind.LOOP_COPY, "L2", parent=l2_first)
        l2_second = plan.add_node(PlanNodeKind.LOOP_GROUP, "L2", parent=copy_two)
        plan.add_node(PlanNodeKind.LOOP_COPY, "L2", parent=l2_second)
        l1_group = plan.add_node(PlanNodeKind.LOOP_GROUP, "L1", parent=root)
        l1_first = plan.add_node(PlanNodeKind.LOOP_COPY, "L1", parent=l1_group)
        l1_second = plan.add_node(PlanNodeKind.LOOP_COPY, "L1", parent=l1_group)
        f2_first = plan.add_node(PlanNodeKind.FORK_GROUP, "F2", parent=l1_first)
        plan.add_node(PlanNodeKind.FORK_COPY, "F2", parent=f2_first)
        f2_second = plan.add_node(PlanNodeKind.FORK_GROUP, "F2", parent=l1_second)
        plan.add_node(PlanNodeKind.FORK_COPY, "F2", parent=f2_second)
        plan.add_node(PlanNodeKind.FORK_COPY, "F2", parent=f2_second)

        generated = materialize_plan(paper_spec, plan)
        assert generated.run.vertex_count == 16
        assert generated.run.edge_count == 18

    def test_empty_group_rejected(self, paper_spec):
        from repro.exceptions import SpecificationError
        from repro.workflow.plan import ExecutionPlan

        plan = ExecutionPlan()
        root = plan.add_root()
        plan.add_node(PlanNodeKind.FORK_GROUP, "F1", parent=root)
        plan.add_node(PlanNodeKind.LOOP_GROUP, "L1", parent=root)
        with pytest.raises(SpecificationError):
            materialize_plan(paper_spec, plan)


class TestGrowToSize:
    def test_target_reached(self, paper_spec):
        generated = generate_run_with_size(paper_spec, 500, seed=1)
        assert generated.run.vertex_count >= 500
        assert generated.run.vertex_count <= 500 + paper_spec.vertex_count

    def test_small_target_gives_identity_size(self, paper_spec):
        generated = generate_run_with_size(paper_spec, paper_spec.vertex_count, seed=1)
        assert generated.run.vertex_count == paper_spec.vertex_count

    def test_target_below_spec_rejected(self, paper_spec):
        with pytest.raises(DatasetError):
            grow_plan_to_size(paper_spec, paper_spec.vertex_count - 1, random.Random(0))

    def test_region_free_spec_cannot_grow(self):
        spec = WorkflowSpecification.from_edges([("s", "x"), ("x", "t")], name="flat")
        with pytest.raises(DatasetError):
            grow_plan_to_size(spec, 10, random.Random(0))

    def test_growth_is_deterministic_per_seed(self, paper_spec):
        first = generate_run_with_size(paper_spec, 300, seed=9)
        second = generate_run_with_size(paper_spec, 300, seed=9)
        assert first.run.vertex_count == second.run.vertex_count
        assert first.plan.signature() == second.plan.signature()

    def test_synthetic_spec_growth(self, synthetic_spec):
        generated = generate_run_with_size(synthetic_spec, 1000, seed=2)
        assert generated.run.vertex_count >= 1000
        assert is_dag(generated.run.graph)
