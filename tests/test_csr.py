"""Regression tests for the CSR graph core (repro.graphs.csr)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError, VertexNotFoundError
from repro.graphs.csr import CSRGraph, VertexInterner
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import ancestors, descendants


def diamond() -> DiGraph:
    return DiGraph(edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


class TestVertexInterner:
    def test_intern_assigns_dense_ids_in_insertion_order(self):
        interner = VertexInterner()
        assert interner.intern("x") == 0
        assert interner.intern("y") == 1
        assert interner.intern("z") == 2
        assert list(interner) == ["x", "y", "z"]

    def test_intern_is_idempotent(self):
        interner = VertexInterner(["a", "b"])
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert len(interner) == 2

    def test_round_trip(self):
        vertices = ["v0", ("tuple", 1), 42, frozenset({"s"})]
        interner = VertexInterner(vertices)
        for vertex in vertices:
            assert interner.vertex_at(interner.id_of(vertex)) == vertex
        for identifier in range(len(interner)):
            assert interner.id_of(interner.vertex_at(identifier)) == identifier

    def test_unknown_vertex_raises(self):
        interner = VertexInterner(["a"])
        with pytest.raises(VertexNotFoundError):
            interner.id_of("missing")
        with pytest.raises(VertexNotFoundError):
            interner.vertex_at(5)

    def test_negative_identifier_raises(self):
        interner = VertexInterner(["a", "b", "c"])
        with pytest.raises(VertexNotFoundError):
            interner.vertex_at(-1)

    def test_contains(self):
        interner = VertexInterner(["a"])
        assert "a" in interner
        assert "b" not in interner


class TestConstruction:
    def test_from_digraph_preserves_iteration_order(self):
        graph = DiGraph(
            vertices=["z", "m", "a"],
            edges=[("z", "a"), ("m", "a"), ("z", "m"), ("a", "q")],
        )
        csr = CSRGraph.from_digraph(graph)
        assert csr.vertices() == graph.vertices()
        assert csr.edges() == graph.edges()
        for vertex in graph.vertices():
            assert csr.successors(vertex) == graph.successors(vertex)
            assert csr.predecessors(vertex) == graph.predecessors(vertex)

    def test_to_digraph_round_trip(self):
        graph = diamond()
        assert CSRGraph.from_digraph(graph).to_digraph() == graph

    def test_digraph_to_csr_helper(self):
        graph = diamond()
        csr = graph.to_csr()
        assert isinstance(csr, CSRGraph)
        assert csr.edges() == graph.edges()

    def test_same_edge_stream_matches_digraph(self):
        edges = [("c", "a"), ("b", "a"), ("c", "b"), ("a", "d"), ("c", "a")]
        assert CSRGraph(edges=edges).edges() == DiGraph(edges=edges).edges()

    def test_self_loops_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(edges=[("a", "a")])

    def test_parallel_edges_collapsed(self):
        csr = CSRGraph(edges=[("a", "b"), ("a", "b"), ("a", "b")])
        assert csr.edge_count == 1
        assert csr.successors("a") == ["b"]

    def test_empty_graph(self):
        csr = CSRGraph()
        assert csr.vertex_count == 0
        assert csr.edge_count == 0
        assert csr.vertices() == []
        assert csr.edges() == []
        assert len(csr) == 0

    def test_singleton_vertex(self):
        csr = CSRGraph(vertices=["only"])
        assert csr.vertex_count == 1
        assert csr.edge_count == 0
        assert csr.successors("only") == []
        assert csr.predecessors("only") == []
        assert csr.out_degree("only") == 0
        assert csr.in_degree("only") == 0


class TestQueries:
    def test_degrees_match_digraph(self):
        graph = diamond()
        csr = CSRGraph.from_digraph(graph)
        for vertex in graph.vertices():
            assert csr.out_degree(vertex) == graph.out_degree(vertex)
            assert csr.in_degree(vertex) == graph.in_degree(vertex)

    def test_has_edge_and_has_vertex(self):
        csr = CSRGraph.from_digraph(diamond())
        assert csr.has_vertex("a") and not csr.has_vertex("nope")
        assert csr.has_edge("a", "b")
        assert not csr.has_edge("b", "a")
        assert not csr.has_edge("a", "nope")
        assert "a" in csr and "nope" not in csr

    def test_unknown_vertex_raises(self):
        csr = CSRGraph.from_digraph(diamond())
        with pytest.raises(VertexNotFoundError):
            csr.successors("missing")
        with pytest.raises(VertexNotFoundError):
            csr.successor_ids(99)
        with pytest.raises(VertexNotFoundError):
            csr.predecessor_ids(-1)
        with pytest.raises(VertexNotFoundError):
            csr.reachable_ids(99)
        with pytest.raises(VertexNotFoundError):
            csr.vertex_at(-1)

    def test_identifier_view_consistent(self):
        csr = CSRGraph.from_digraph(diamond())
        a = csr.id_of("a")
        successor_names = {csr.vertex_at(i) for i in csr.successor_ids(a)}
        assert successor_names == {"b", "c"}

    def test_reachable_ids_matches_traversal(self):
        graph = DiGraph(
            edges=[("a", "b"), ("b", "c"), ("a", "d"), ("d", "c"), ("c", "e"), ("x", "y")]
        )
        csr = CSRGraph.from_digraph(graph)
        for vertex in graph.vertices():
            reached = {csr.vertex_at(i) for i in csr.reachable_ids(csr.id_of(vertex))}
            assert reached == descendants(graph, vertex) | {vertex}
            above = {
                csr.vertex_at(i)
                for i in csr.reachable_ids(csr.id_of(vertex), reverse=True)
            }
            assert above == ancestors(graph, vertex) | {vertex}

    def test_interner_property_is_shared_table(self):
        csr = CSRGraph.from_digraph(diamond())
        assert csr.interner.id_of("a") == csr.id_of("a")
        assert list(csr.interner) == csr.vertices()
