"""Tests for the persistent worker pool and its reuse across executions.

Covers the pool's lazy-start/explicit-close lifecycle, the owner mixin on
both stores, reuse by the cross-run executor (one pool start across many
plan executions, in thread and process mode), the process-mode payload
cache (dense matrices pickled once per pool), and the ``pool=False``
escape hatch that forces the old per-execution pools.
"""

from __future__ import annotations

import pytest

from repro.api import CrossRunQuery, ProvenanceSession
from repro.engine.parallel import CrossRunExecutor
from repro.engine.pool import DEFAULT_POOL_WORKERS, PersistentWorkerPool
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.sharded import ShardedProvenanceStore
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size


class TestPersistentWorkerPool:
    def test_lazy_start_and_submit(self):
        pool = PersistentWorkerPool()
        assert not pool.started and pool.starts == 0
        future = pool.submit(lambda x: x + 1, 41)
        assert future.result() == 42
        assert pool.started and pool.starts == 1
        assert pool.tasks_submitted == 1
        pool.close()
        assert pool.closed

    def test_close_is_idempotent_and_final(self):
        pool = PersistentWorkerPool(workers=2)
        pool.submit(int)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit(int)

    def test_close_before_start_is_fine(self):
        pool = PersistentWorkerPool()
        pool.close()
        assert not pool.started and pool.closed

    def test_context_manager(self):
        with PersistentWorkerPool() as pool:
            assert pool.submit(sum, (1, 2, 3)).result() == 6
        assert pool.closed

    def test_validation(self):
        with pytest.raises(ValueError):
            PersistentWorkerPool(mode="fiber")
        with pytest.raises(ValueError):
            PersistentWorkerPool(workers=0)
        assert PersistentWorkerPool().workers == DEFAULT_POOL_WORKERS

    def test_stats(self):
        pool = PersistentWorkerPool(workers=3)
        stats = pool.stats()
        assert stats["mode"] == "thread" and not stats["started"]
        pool.submit(int)
        pool.payload_cache["k"] = b"blob"
        stats = pool.stats()
        assert stats["tasks_submitted"] == 1 and stats["payloads_cached"] == 1
        pool.close()
        assert pool.payload_cache == {}


class TestLeakedPoolFinalizer:
    def test_leaked_started_pool_warns_and_names_its_owner(self):
        import gc
        import warnings

        pool = PersistentWorkerPool(workers=1, owner="TestLeakedPool")
        assert pool.submit(int).result() == 0
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            del pool
            gc.collect()
        leaks = [w for w in caught if issubclass(w.category, ResourceWarning)]
        assert len(leaks) == 1
        message = str(leaks[0].message)
        assert "TestLeakedPool" in message and "never closed" in message

    def test_closed_pool_never_warns(self):
        import gc
        import warnings

        pool = PersistentWorkerPool(workers=1)
        pool.submit(int).result()
        pool.close()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            del pool
            gc.collect()
        assert not [w for w in caught if issubclass(w.category, ResourceWarning)]

    def test_never_started_pool_never_warns(self):
        import gc
        import warnings

        pool = PersistentWorkerPool(workers=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            del pool
            gc.collect()
        assert not [w for w in caught if issubclass(w.category, ResourceWarning)]

    def test_store_leak_warning_names_the_store(self, tmp_path):
        import gc
        import warnings

        store = ProvenanceStore(tmp_path / "leaky.db")
        store.worker_pool("thread").submit(int).result()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            del store
            gc.collect()
        leaks = [w for w in caught if issubclass(w.category, ResourceWarning)]
        assert len(leaks) == 1
        assert "ProvenanceStore" in str(leaks[0].message)
        assert "leaky.db" in str(leaks[0].message)


class TestOwnerMixin:
    def test_store_owns_one_pool_per_mode(self, tmp_path):
        store = ProvenanceStore(tmp_path / "own.db")
        thread_pool = store.worker_pool("thread")
        assert store.worker_pool("thread") is thread_pool
        process_pool = store.worker_pool("process")
        assert process_pool is not thread_pool and process_pool.mode == "process"
        store.close()
        assert thread_pool.closed and process_pool.closed

    def test_closed_pool_is_replaced(self, tmp_path):
        store = ProvenanceStore(tmp_path / "replace.db")
        pool = store.worker_pool("thread")
        pool.close()
        fresh = store.worker_pool("thread")
        assert fresh is not pool and not fresh.closed
        store.close()

    def test_sharded_store_closes_pools(self, tmp_path):
        store = ShardedProvenanceStore(tmp_path / "sharded", 2)
        pool = store.worker_pool("thread")
        store.close()
        assert pool.closed


@pytest.fixture()
def pooled_store(tmp_path, paper_spec, paper_labeler):
    store = ProvenanceStore(tmp_path / "pooled.db")
    for seed in range(6):
        generated = generate_run_with_size(
            paper_spec, 20, seed=seed, name=f"pooled-{seed}"
        )
        store.add_labeled_run(paper_labeler.label_run(generated.run))
    yield store, paper_spec
    store.close()


class TestExecutorPoolReuse:
    def test_executions_share_one_pool_start(self, pooled_store):
        store, spec = pooled_store
        executor = CrossRunExecutor(store, workers=2, mode="thread")
        first = executor.sweep(spec.name, ("a", 1))
        pool = store.worker_pool("thread")
        assert pool.starts == 1
        submitted = pool.tasks_submitted
        assert submitted > 0
        for _ in range(3):
            assert executor.sweep(spec.name, ("a", 1)) == first
        assert pool.starts == 1, "re-executions must not restart the pool"
        assert pool.tasks_submitted > submitted

    def test_compiled_plan_reuses_store_pool(self, pooled_store):
        store, spec = pooled_store
        session = ProvenanceSession(store)
        plan = session.compile(CrossRunQuery(spec.name, ("a", 1), workers=2))
        first = plan.execute()
        for _ in range(2):
            assert plan.execute().per_run == first.per_run
        # whichever pool mode REPRO_PARALLEL selected, it started exactly once
        assert sum(stats["starts"] for stats in store.pool_stats().values()) == 1

    def test_process_mode_caches_dense_payloads(self, pooled_store):
        pytest.importorskip("numpy")
        store, spec = pooled_store
        executor = CrossRunExecutor(store, workers=2, mode="process")
        first = executor.sweep(spec.name, ("a", 1))
        pool = store.worker_pool("process")
        cached = len(pool.payload_cache)
        assert cached >= 1, "the dense spec matrix must be pickled into the cache"
        assert executor.sweep(spec.name, ("a", 1)) == first
        assert len(pool.payload_cache) == cached, "re-executions must not re-pickle"

    def test_pool_false_forces_ephemeral_pools(self, pooled_store):
        store, spec = pooled_store
        executor = CrossRunExecutor(store, workers=2, pool=False)
        answers = executor.sweep(spec.name, ("a", 1))
        # no persistent pool was created on the store
        assert store.pool_stats() == {}
        assert CrossRunExecutor(store, workers=1).sweep(spec.name, ("a", 1)) == answers

    def test_explicit_pool_object_is_used_and_kept_open(self, pooled_store):
        store, spec = pooled_store
        with PersistentWorkerPool(workers=2) as pool:
            executor = CrossRunExecutor(store, workers=2, pool=pool)
            sequential = CrossRunExecutor(store, workers=1).sweep(spec.name, ("a", 1))
            assert executor.sweep(spec.name, ("a", 1)) == sequential
            assert pool.tasks_submitted > 0 and not pool.closed

    def test_sequential_paths_never_start_a_pool(self, pooled_store):
        store, spec = pooled_store
        CrossRunExecutor(store, workers=1).sweep(spec.name, ("a", 1))
        assert store.pool_stats() == {}


class TestReviewRegressions:
    def test_oversized_explicit_request_bypasses_narrow_store_pool(
        self, pooled_store
    ):
        store, spec = pooled_store
        sequential = CrossRunExecutor(store, workers=1).sweep(spec.name, ("a", 1))
        wide = CrossRunExecutor(store, workers=DEFAULT_POOL_WORKERS + 4, mode="thread")
        assert wide.sweep(spec.name, ("a", 1)) == sequential
        # the 8-wide shared pool cannot serve a 12-way request; an
        # ephemeral pool did, so the store pool was never started
        stats = store.pool_stats()
        assert not stats or stats["thread"]["tasks_submitted"] == 0

    def test_concurrent_worker_pool_requests_share_one_pool(self, tmp_path):
        import threading

        store = ProvenanceStore(tmp_path / "race.db")
        pools = []
        barrier = threading.Barrier(8)

        def grab():
            barrier.wait()
            pools.append(store.worker_pool("thread"))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(pool) for pool in pools}) == 1
        store.close()
        assert pools[0].closed
