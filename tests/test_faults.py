"""The fault-tolerance layer under deterministic fault injection.

Covers the injection framework itself (the ``REPRO_FAULTS`` grammar,
trigger rules, seeded determinism, suppression, env activation), graceful
degradation in the local stack (pushdown SQL faults falling back to the
streamed kernel, crashed worker chunks retried then re-run sequentially,
the broken-process-pool restart), the client's retry/backoff/reconnect
machinery (transport faults on send and receive, exactly-once ingest
replay across a forced mid-flush disconnect, the circuit breaker), the
HEALTH op, the stop()-during-buffered-ingest regression, and the CLI
``health`` subcommand.  Every recovery asserts bit-identical answers
against an unfaulted oracle — degradation may never change a result.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro import faults
from repro.api import (
    CrossRunQuery,
    DownstreamQuery,
    PointQuery,
    ProvenanceSession,
)
from repro.cli import main
from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.engine.parallel import CrossRunExecutor
from repro.engine.pool import PersistentWorkerPool
from repro.exceptions import (
    CircuitOpenError,
    FaultSpecError,
    ProtocolError,
    WorkerCrashError,
)
from repro.faults import (
    CHAOS_POINTS,
    FaultPlan,
    FaultRule,
    InjectedConnectionError,
    InjectedOperationalError,
    active_plans,
    fault_point,
    parse_fault_spec,
    suppressed,
)
from repro.server import RemoteStore, ServerThread
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.sharded import ShardedProvenanceStore
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """These tests count exact fires of explicit plans; a REPRO_FAULTS
    chaos profile (the CI chaos leg) would add fires of its own and skew
    every counter assertion, so the env plan is masked here.  The chaos
    leg's coverage of this surface comes from ``test_faults_properties``
    and the server/parallel suites, which assert outcomes, not counts."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


# ----------------------------------------------------------------------
# the injection framework
# ----------------------------------------------------------------------
class TestFaultRules:
    def test_nth_fires_exactly_once(self):
        plan = FaultPlan([FaultRule("pool.task", "crash", nth=2)])
        with plan.active():
            fault_point("pool.task")
            with pytest.raises(WorkerCrashError):
                fault_point("pool.task")
            for _ in range(5):
                fault_point("pool.task")
        assert plan.calls == {"pool.task": 7}
        assert plan.fired == {"pool.task": 1}

    def test_every_fires_periodically(self):
        plan = FaultPlan([FaultRule("client.send", "oserror", every=3)])
        fired = 0
        with plan.active():
            for _ in range(9):
                try:
                    fault_point("client.send")
                except InjectedConnectionError:
                    fired += 1
        assert fired == 3
        assert plan.fired == {"client.send": 3}

    def test_times_caps_total_fires(self):
        plan = FaultPlan([FaultRule("client.recv", "oserror", every=1, times=2)])
        fired = 0
        with plan.active():
            for _ in range(10):
                try:
                    fault_point("client.recv")
                except InjectedConnectionError:
                    fired += 1
        assert fired == 2

    def test_probabilistic_rule_is_seed_deterministic(self):
        def pattern(seed):
            plan = FaultPlan(
                [FaultRule("pool.task", "crash", p=0.5)], seed=seed
            )
            observed = []
            with plan.active():
                for _ in range(64):
                    try:
                        fault_point("pool.task")
                        observed.append(False)
                    except WorkerCrashError:
                        observed.append(True)
            return observed

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)  # astronomically unlikely to collide

    def test_reset_rewinds_the_deterministic_stream(self):
        plan = FaultPlan([FaultRule("pool.task", "crash", p=0.5)], seed=3)

        def sample():
            observed = []
            with plan.active():
                for _ in range(32):
                    try:
                        fault_point("pool.task")
                        observed.append(False)
                    except WorkerCrashError:
                        observed.append(True)
            return observed

        first = sample()
        plan.reset()
        assert sample() == first

    def test_kinds_map_to_exception_shapes(self):
        import sqlite3

        with FaultPlan([FaultRule("store.connect", "sql", once=True)]).active():
            with pytest.raises(sqlite3.OperationalError):
                fault_point("store.connect")
        with FaultPlan([FaultRule("client.send", "oserror", once=True)]).active():
            with pytest.raises(OSError):
                fault_point("client.send")

    def test_unknown_point_and_kind_fail_fast(self):
        with pytest.raises(FaultSpecError, match="unknown fault point"):
            FaultRule("store.nope", "oserror", once=True)
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            FaultRule("pool.task", "segfault", once=True)

    def test_exactly_one_trigger_required(self):
        with pytest.raises(FaultSpecError, match="exactly one trigger"):
            FaultRule("pool.task", "crash")
        with pytest.raises(FaultSpecError, match="exactly one trigger"):
            FaultRule("pool.task", "crash", nth=1, every=2)
        with pytest.raises(FaultSpecError, match="mutually exclusive"):
            FaultRule("pool.task", "crash", once=True, nth=2)

    def test_suppressed_masks_every_point(self):
        plan = FaultPlan([FaultRule("pool.task", "crash", every=1)])
        with plan.active():
            with suppressed():
                for _ in range(5):
                    fault_point("pool.task")  # must not raise
            with pytest.raises(WorkerCrashError):
                fault_point("pool.task")
        # suppression did not advance the counters
        assert plan.calls == {"pool.task": 1}

    def test_inactive_points_are_free(self):
        fault_point("client.send")  # no active plan: a no-op


class TestFaultSpecGrammar:
    def test_full_spec_round_trip(self):
        plan = parse_fault_spec(
            "client.recv:oserror,nth=3;pool.task:crash,p=0.05;seed=7"
        )
        assert plan.seed == 7
        assert [(r.point, r.kind, r.nth, r.p) for r in plan.rules] == [
            ("client.recv", "oserror", 3, None),
            ("pool.task", "crash", None, 0.05),
        ]

    def test_kind_defaults_to_oserror(self):
        (rule,) = parse_fault_spec("client.send:once").rules
        assert rule.kind == "oserror" and rule.nth == 1

    def test_chaos_expands_to_recoverable_points(self):
        plan = parse_fault_spec("chaos:p=0.25;seed=42")
        assert plan.seed == 42
        assert {rule.point: rule.kind for rule in plan.rules} == CHAOS_POINTS
        assert all(rule.p == 0.25 for rule in plan.rules)

    def test_chaos_default_probability(self):
        plan = parse_fault_spec("chaos")
        assert all(rule.p == 0.01 for rule in plan.rules)

    def test_spec_errors(self):
        with pytest.raises(FaultSpecError, match="unknown fault point"):
            parse_fault_spec("disk.melt:oserror,once")
        with pytest.raises(FaultSpecError, match="unknown key"):
            parse_fault_spec("pool.task:crash,when=later")
        with pytest.raises(FaultSpecError, match="bad seed"):
            parse_fault_spec("seed=many")
        with pytest.raises(FaultSpecError, match="chaos profile picks the kind"):
            parse_fault_spec("chaos:oserror")
        with pytest.raises(FaultSpecError, match="unknown key"):
            parse_fault_spec("chaos:p=0.1,seed=7")  # seed is its own clause
        with pytest.raises(FaultSpecError, match="two fault kinds"):
            parse_fault_spec("pool.task:crash,oserror,once")

    def test_env_activation_and_hot_swap(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "client.send:oserror,nth=1")
        with pytest.raises(InjectedConnectionError):
            fault_point("client.send")
        fault_point("client.send")  # nth=1 spent
        # changing the variable re-parses (fresh counters)
        monkeypatch.setenv("REPRO_FAULTS", "client.send:oserror,nth=1;seed=9")
        assert [plan.seed for plan in active_plans()] == [9]
        with pytest.raises(InjectedConnectionError):
            fault_point("client.send")
        monkeypatch.delenv("REPRO_FAULTS")
        assert active_plans() == []


# ----------------------------------------------------------------------
# local degradation: pushdown fallback + worker retry/sequential
# ----------------------------------------------------------------------
def _forest_spec(name, seed=11, n_modules=14):
    return generate_specification(
        SyntheticSpecConfig(
            n_modules=n_modules,
            n_edges=n_modules - 1,
            hierarchy_size=4,
            hierarchy_depth=2,
            name=name,
            seed=seed,
        )
    )


@pytest.fixture(scope="module")
def degradation_store(tmp_path_factory):
    """An interval-labeled store (pushdown-capable) with several runs."""
    spec = _forest_spec("faults-forest")
    labeler = SkeletonLabeler(spec, "interval")
    store = ProvenanceStore(tmp_path_factory.mktemp("faults") / "prov.db")
    anchor = None
    for index in range(6):
        generated = generate_run_with_size(
            spec, 40, seed=index, name=f"faulted-{index}"
        )
        store.add_labeled_run(labeler.label_run(generated.run))
        if anchor is None:
            vertex = generated.run.vertices()[0]
            anchor = (vertex.module, vertex.instance)
    yield store, spec, anchor
    store.close()


class TestPushdownDegradation:
    def test_single_run_sweep_falls_back_bit_identically(self, degradation_store):
        store, spec, anchor = degradation_store
        session = ProvenanceSession(store)
        query = DownstreamQuery(anchor, run_id=1, pushdown="always")
        oracle = session.run(query)
        before = store.cache_stats()["degraded"].get("pushdown_fallback", 0)
        plan = FaultPlan([FaultRule("pushdown.sql", "sql", nth=1)])
        with plan.active():
            degraded = session.run(query)
        assert plan.fired == {"pushdown.sql": 1}
        assert degraded == oracle
        after = store.cache_stats()["degraded"]["pushdown_fallback"]
        assert after == before + 1

    def test_cross_run_sweep_falls_back_bit_identically(self, degradation_store):
        store, spec, anchor = degradation_store
        session = ProvenanceSession(store)
        query = CrossRunQuery(spec.name, anchor, pushdown="always", workers=1)
        oracle = session.run(query)
        plan = FaultPlan([FaultRule("pushdown.sql", "sql", nth=1)])
        with plan.active():
            degraded = session.run(query)
        assert plan.fired == {"pushdown.sql": 1}
        assert degraded.per_run == oracle.per_run
        assert degraded.skipped_runs == oracle.skipped_runs
        assert store.cache_stats()["degraded"]["pushdown_fallback"] >= 1


class TestWorkerDegradation:
    def test_crashed_chunk_is_retried_once(self, degradation_store):
        store, spec, anchor = degradation_store
        executor = CrossRunExecutor(store, workers=2, mode="thread")
        oracle = executor.sweep(spec.name, anchor)
        before = store.cache_stats()["degraded"].get("worker_retry", 0)
        plan = FaultPlan([FaultRule("pool.task", "crash", nth=1)])
        with plan.active():
            degraded = executor.sweep(spec.name, anchor)
        assert plan.fired == {"pool.task": 1}
        assert degraded == oracle
        assert store.cache_stats()["degraded"]["worker_retry"] == before + 1

    def test_persistent_crash_degrades_to_sequential(self, degradation_store):
        store, spec, anchor = degradation_store
        executor = CrossRunExecutor(store, workers=2, mode="thread")
        oracle = executor.sweep(spec.name, anchor)
        # every=1: the retry fails too; only the suppressed() sequential
        # fallback can finish — and it must match bit-identically
        plan = FaultPlan([FaultRule("pool.task", "crash", every=1)])
        with plan.active():
            degraded = executor.sweep(spec.name, anchor)
        assert degraded == oracle
        counters = store.cache_stats()["degraded"]
        assert counters["worker_retry"] >= 1
        assert counters["worker_sequential"] >= 1

    def test_submit_failure_counts_as_first_attempt(self, degradation_store):
        store, spec, anchor = degradation_store
        executor = CrossRunExecutor(store, workers=2, mode="thread")
        oracle = executor.sweep(spec.name, anchor)
        plan = FaultPlan([FaultRule("pool.submit", "oserror", nth=1)])
        with plan.active():
            degraded = executor.sweep(spec.name, anchor)
        assert plan.fired == {"pool.submit": 1}
        assert degraded == oracle
        assert store.cache_stats()["degraded"]["worker_retry"] >= 1


class TestBrokenPoolRestart:
    def test_process_pool_restarts_after_worker_death(self):
        pool = PersistentWorkerPool(mode="process", workers=2)
        try:
            assert pool.submit(sum, (1, 2)).result() == 3
            with pytest.raises(BrokenExecutor):
                pool.submit(os._exit, 13).result()
            # the next submit detects the broken executor, discards it and
            # lazily starts a fresh pool
            assert pool.submit(sum, (20, 22)).result() == 42
            assert pool.restarts == 1
            assert pool.stats()["restarts"] == 1
            assert pool.starts == 2
        finally:
            pool.close()

    def test_closed_pool_still_refuses_submits(self):
        pool = PersistentWorkerPool(mode="thread", workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(int)


# ----------------------------------------------------------------------
# the client retry machinery, exactly-once ingest, breaker and HEALTH
# ----------------------------------------------------------------------
@pytest.fixture()
def served_faulted(tmp_path, paper_spec, paper_labeler, paper_run):
    """A sharded store with one run behind a ServerThread, plus a client."""
    store = ShardedProvenanceStore(tmp_path / "served-faults", 2)
    store.add_labeled_runs([paper_labeler.label_run(paper_run)])
    with ServerThread(store) as server:
        client = RemoteStore(
            server.url, retries=3, backoff_base=0.01, retry_seed=1
        )
        try:
            yield store, server, client
        finally:
            client.close()
    store.close()


class TestClientRetry:
    def test_recv_fault_is_retried_transparently(self, served_faulted):
        store, server, client = served_faulted
        oracle = client.list_runs()
        plan = FaultPlan([FaultRule("client.recv", "oserror", nth=1)])
        with plan.active():
            assert client.list_runs() == oracle
        assert plan.fired == {"client.recv": 1}
        assert client.fault_stats["retries"] >= 1
        assert client.fault_stats["reconnects"] >= 1

    def test_send_fault_is_retried_transparently(self, served_faulted):
        store, server, client = served_faulted
        session = client.session()
        run_id = int(client.list_runs()[0]["run_id"])
        query = PointQuery(("a", 1), ("h", 1), run_id=run_id)
        oracle = session.run(query)
        plan = FaultPlan([FaultRule("client.send", "oserror", nth=1)])
        with plan.active():
            assert session.run(query) == oracle
        assert plan.fired == {"client.send": 1}
        assert client.fault_stats["retries"] >= 1

    def test_retries_exhausted_raises_typed_error(self, served_faulted):
        store, server, client = served_faulted
        # more consecutive faults than retries: the typed error surfaces,
        # the client stays usable afterwards
        plan = FaultPlan(
            [FaultRule("client.send", "oserror", every=1, times=10)]
        )
        with plan.active():
            with pytest.raises((ProtocolError, OSError)):
                client.list_runs()
        assert client.list_runs()  # recovered once the plan is gone

    def test_mid_flush_disconnect_commits_exactly_once(
        self, served_faulted, paper_spec, paper_labeler, paper_run
    ):
        store, server, client = served_faulted
        labeled = paper_labeler.label_run(
            generate_run_with_size(
                paper_spec, 24, seed=31, name="mid-flush"
            ).run
        )
        baseline = len(client.list_runs(paper_spec.name))
        assert client.ingest([labeled], flush=False) == []
        assert client.pending_ingest == 1
        # the flush commits server-side, then the ack is lost: the client
        # reconnects and replays the entry under its original sequence
        # token, and the server's (client_id, seq) dedupe returns the run
        # id already committed — never a second copy
        plan = FaultPlan([FaultRule("client.recv", "oserror", nth=1)])
        with plan.active():
            run_ids = client.flush()
        assert plan.fired == {"client.recv": 1}
        assert len(run_ids) == 1
        assert client.pending_ingest == 0
        assert client.fault_stats["retries"] >= 1
        rows = client.list_runs(paper_spec.name)
        assert len(rows) == baseline + 1
        assert run_ids[0] in {int(row["run_id"]) for row in rows}

    def test_replayed_ingest_never_duplicates_across_reconnects(
        self, served_faulted, paper_spec, paper_labeler, paper_run
    ):
        store, server, client = served_faulted
        labeled = [
            paper_labeler.label_run(
                generate_run_with_size(
                    paper_spec, 24, seed=seed, name=f"replay-{seed}"
                ).run
            )
            for seed in (7, 8)
        ]
        baseline = len(client.list_runs(paper_spec.name))
        # lose the ack of each of the two flushes: two reconnect/replay
        # cycles, still exactly two new runs
        plan = FaultPlan([FaultRule("client.recv", "oserror", nth=1, times=1)])
        with plan.active():
            first = client.ingest([labeled[0]], flush=True)
        second = client.ingest([labeled[1]], flush=True)
        assert len(first) == 1 and len(second) == 1
        rows = client.list_runs(paper_spec.name)
        assert len(rows) == baseline + 2
        names = [row["name"] for row in rows]
        assert len(names) == len(set(names))

    def test_circuit_breaker_opens_and_half_opens(self, tmp_path, paper_labeler, paper_run):
        store = ProvenanceStore(tmp_path / "breaker.db")
        store.add_labeled_run(paper_labeler.label_run(paper_run))
        server = ServerThread(store).start()
        client = RemoteStore(
            server.url,
            retries=0,
            backoff_base=0.001,
            breaker_threshold=2,
            breaker_reset=0.2,
        )
        try:
            assert client.list_runs()
            server.stop()
            for _ in range(2):
                with pytest.raises((ProtocolError, OSError)):
                    client.list_runs()
            assert client.fault_stats["breaker_opens"] == 1
            # open: fast-fail without touching the socket
            with pytest.raises(CircuitOpenError):
                client.list_runs()
            assert client.fault_stats["circuit_rejections"] >= 1
            # half-open after the reset window: a real (failing) probe, so
            # a typed connection error again, not CircuitOpenError
            time.sleep(0.25)
            with pytest.raises((ProtocolError, OSError)) as excinfo:
                client.list_runs()
            assert not isinstance(excinfo.value, CircuitOpenError)
        finally:
            client.close()
            store.close()

    def test_closed_client_refuses_requests(self, served_faulted):
        store, server, client = served_faulted
        client.close()
        with pytest.raises(ProtocolError, match="closed"):
            client.list_runs()


class TestHealthOp:
    def test_health_reports_shards_and_protocol(self, served_faulted):
        store, server, client = served_faulted
        report = client.health()
        assert report["status"] == "ok"
        assert report["protocol"] == 4
        assert report["shards_total"] == 2
        assert report["shards_reachable"] == 2
        assert report["connections"] >= 1
        assert isinstance(report["degraded"], dict)

    def test_cli_health_subcommand(self, served_faulted, capsys):
        store, server, client = served_faulted
        assert main(["health", "--database", server.url]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "ok"
        assert report["shards_total"] == 2

    def test_cli_health_rejects_local_paths(self, tmp_path, capsys):
        assert main(["health", "--database", str(tmp_path / "x.db")]) == 2
        assert "repro://" in capsys.readouterr().err


# ----------------------------------------------------------------------
# stop() vs buffered ingest (the shutdown regression)
# ----------------------------------------------------------------------
class TestStopFlushesBufferedIngest:
    def test_stop_flushes_ingest_buffered_on_a_live_connection(
        self, tmp_path, paper_spec, paper_labeler, paper_run
    ):
        store = ProvenanceStore(tmp_path / "stop-flush.db")
        server = ServerThread(store).start()
        client = RemoteStore(server.url)
        try:
            assert client.ingest(
                [paper_labeler.label_run(paper_run)], flush=False
            ) == []
            # the entry sits in the server's per-connection buffer with no
            # disconnect to trigger the eof flush: stop() must commit it
            server.stop()
        finally:
            client.close()
        assert len(store.list_runs(paper_spec.name)) == 1
        store.close()

    def test_disconnect_racing_stop_commits_exactly_once(
        self, tmp_path, paper_spec, paper_labeler, paper_run
    ):
        store = ProvenanceStore(tmp_path / "stop-race.db")
        server = ServerThread(store).start()
        client = RemoteStore(server.url)
        client.ingest([paper_labeler.label_run(paper_run)], flush=False)
        # eof-triggered disconnect-flush races the shutdown flush; both
        # paths serialize on the store thread and pop the buffer first,
        # so exactly one commit survives
        client.close()
        server.stop()
        assert len(store.list_runs(paper_spec.name)) == 1
        store.close()
