"""Unit tests for the DiGraph container."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graphs.digraph import DiGraph


@pytest.fixture()
def diamond() -> DiGraph:
    """A small diamond: s -> a -> t, s -> b -> t."""
    return DiGraph(edges=[("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")])


class TestConstruction:
    def test_empty_graph(self):
        graph = DiGraph()
        assert graph.vertex_count == 0
        assert graph.edge_count == 0
        assert graph.vertices() == []
        assert graph.edges() == []

    def test_vertices_only(self):
        graph = DiGraph(vertices=["x", "y", "z"])
        assert graph.vertex_count == 3
        assert graph.edge_count == 0

    def test_edges_add_endpoints(self, diamond: DiGraph):
        assert diamond.vertex_count == 4
        assert diamond.edge_count == 4

    def test_insertion_order_preserved(self):
        graph = DiGraph(vertices=["c", "a", "b"])
        assert graph.vertices() == ["c", "a", "b"]

    def test_duplicate_vertex_is_noop(self):
        graph = DiGraph(vertices=["a", "a", "a"])
        assert graph.vertex_count == 1

    def test_duplicate_edge_is_noop(self):
        graph = DiGraph(edges=[("a", "b"), ("a", "b")])
        assert graph.edge_count == 1

    def test_self_loop_rejected(self):
        graph = DiGraph()
        with pytest.raises(GraphError):
            graph.add_edge("a", "a")


class TestQueries:
    def test_contains(self, diamond: DiGraph):
        assert "a" in diamond
        assert "missing" not in diamond

    def test_len_and_iter(self, diamond: DiGraph):
        assert len(diamond) == 4
        assert set(iter(diamond)) == {"s", "a", "b", "t"}

    def test_has_edge(self, diamond: DiGraph):
        assert diamond.has_edge("s", "a")
        assert not diamond.has_edge("a", "s")
        assert not diamond.has_edge("nope", "a")

    def test_successors_and_predecessors(self, diamond: DiGraph):
        assert set(diamond.successors("s")) == {"a", "b"}
        assert diamond.predecessors("t") == ["a", "b"]
        assert diamond.predecessors("s") == []

    def test_degrees(self, diamond: DiGraph):
        assert diamond.out_degree("s") == 2
        assert diamond.in_degree("s") == 0
        assert diamond.degree("a") == 2

    def test_neighbors_no_duplicates(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        assert graph.neighbors("b") == ["c", "a"]

    def test_sources_and_sinks(self, diamond: DiGraph):
        assert diamond.sources() == ["s"]
        assert diamond.sinks() == ["t"]

    def test_unknown_vertex_raises(self, diamond: DiGraph):
        with pytest.raises(VertexNotFoundError):
            diamond.successors("missing")
        with pytest.raises(VertexNotFoundError):
            diamond.in_degree("missing")

    def test_iter_edges_matches_edges(self, diamond: DiGraph):
        assert list(diamond.iter_edges()) == diamond.edges()


class TestMutation:
    def test_remove_edge(self, diamond: DiGraph):
        diamond.remove_edge("s", "a")
        assert not diamond.has_edge("s", "a")
        assert diamond.edge_count == 3

    def test_remove_missing_edge_raises(self, diamond: DiGraph):
        with pytest.raises(EdgeNotFoundError):
            diamond.remove_edge("a", "b")

    def test_remove_vertex_removes_incident_edges(self, diamond: DiGraph):
        diamond.remove_vertex("a")
        assert "a" not in diamond
        assert diamond.edge_count == 2
        assert not diamond.has_edge("s", "a")
        assert not diamond.has_edge("a", "t")

    def test_remove_missing_vertex_raises(self, diamond: DiGraph):
        with pytest.raises(VertexNotFoundError):
            diamond.remove_vertex("missing")

    def test_remove_vertices_bulk(self, diamond: DiGraph):
        diamond.remove_vertices(["a", "b"])
        assert diamond.vertex_count == 2
        assert diamond.edge_count == 0

    def test_add_edges_bulk(self):
        graph = DiGraph()
        graph.add_edges([("a", "b"), ("b", "c")])
        assert graph.edge_count == 2

    def test_edge_surgery_versions(self, diamond: DiGraph):
        # edge removal must bump only update_version: vertex handles
        # survive edge surgery, so vertex_version stays put
        vertex_version = diamond.vertex_version
        update_version = diamond.update_version
        diamond.remove_edge("s", "a")
        assert diamond.vertex_version == vertex_version
        assert diamond.update_version == update_version + 1
        diamond.add_edge("s", "a")
        assert diamond.vertex_version == vertex_version
        assert diamond.update_version == update_version + 2

    def test_noop_edge_add_does_not_bump_update_version(self, diamond: DiGraph):
        update_version = diamond.update_version
        diamond.add_edge("s", "a")  # already present
        assert diamond.update_version == update_version

    def test_remove_vertex_bumps_both_versions(self, diamond: DiGraph):
        vertex_version = diamond.vertex_version
        update_version = diamond.update_version
        diamond.remove_vertex("a")  # carries two incident edges away
        assert diamond.vertex_version == vertex_version + 1
        assert diamond.update_version == update_version + 2


class TestDerivedGraphs:
    def test_copy_is_independent(self, diamond: DiGraph):
        clone = diamond.copy()
        clone.remove_vertex("a")
        assert "a" in diamond
        assert "a" not in clone

    def test_copy_equality(self, diamond: DiGraph):
        assert diamond.copy() == diamond

    def test_subgraph_induced(self, diamond: DiGraph):
        sub = diamond.subgraph(["s", "a", "t"])
        assert sub.vertex_count == 3
        assert sub.has_edge("s", "a") and sub.has_edge("a", "t")
        assert not sub.has_edge("s", "b")

    def test_subgraph_ignores_unknown_vertices(self, diamond: DiGraph):
        sub = diamond.subgraph(["a", "ghost"])
        assert sub.vertices() == ["a"]

    def test_edge_subgraph(self, diamond: DiGraph):
        sub = diamond.edge_subgraph([("s", "a")])
        assert sub.vertices() == ["s", "a"]
        assert sub.edge_count == 1

    def test_edge_subgraph_unknown_edge_raises(self, diamond: DiGraph):
        with pytest.raises(EdgeNotFoundError):
            diamond.edge_subgraph([("t", "s")])

    def test_reverse(self, diamond: DiGraph):
        reversed_graph = diamond.reverse()
        assert reversed_graph.has_edge("a", "s")
        assert reversed_graph.sources() == ["t"]
        assert reversed_graph.sinks() == ["s"]

    def test_relabeled(self, diamond: DiGraph):
        renamed = diamond.relabeled({"s": "source", "t": "sink"})
        assert renamed.has_edge("source", "a")
        assert renamed.has_edge("b", "sink")
        assert "s" not in renamed

    def test_relabeled_collision_raises(self, diamond: DiGraph):
        with pytest.raises(GraphError):
            diamond.relabeled({"a": "b"})


class TestEqualityAndSerialization:
    def test_equality_ignores_insertion_order(self):
        first = DiGraph(edges=[("a", "b"), ("b", "c")])
        second = DiGraph(edges=[("b", "c"), ("a", "b")])
        assert first == second

    def test_inequality_on_different_edges(self):
        first = DiGraph(edges=[("a", "b")])
        second = DiGraph(edges=[("b", "a")])
        assert first != second

    def test_equality_with_other_type(self, diamond: DiGraph):
        assert (diamond == 42) is False or (diamond == 42) is NotImplemented or True

    def test_unhashable(self, diamond: DiGraph):
        with pytest.raises(TypeError):
            hash(diamond)

    def test_round_trip_dict(self, diamond: DiGraph):
        rebuilt = DiGraph.from_dict(diamond.to_dict())
        assert rebuilt == diamond

    def test_to_dict_lists_isolated_vertices(self):
        graph = DiGraph(vertices=["lonely"])
        payload = graph.to_dict()
        assert payload["vertices"] == ["lonely"]
        assert payload["edges"] == []
