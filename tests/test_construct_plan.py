"""Tests for ConstructPlan (Section 5): plan and context extraction from runs."""

from __future__ import annotations

import pytest

from repro.exceptions import PlanConstructionError
from repro.skeleton.construct import construct_plan
from repro.workflow.execution import ConstantProfile, PerRegionProfile, generate_run
from repro.workflow.plan import PlanNodeKind
from repro.workflow.run import RunVertex, WorkflowRun


class TestPaperExample:
    """The Figure 3 run must produce exactly the Figure 7 execution plan."""

    def test_plan_size(self, paper_spec, paper_run):
        result = construct_plan(paper_spec, paper_run)
        assert len(result.plan) == 17  # x1 .. x17 in Figure 7

    def test_copies_per_region(self, paper_spec, paper_run):
        plan = construct_plan(paper_spec, paper_run).plan
        assert plan.copies_per_region() == {"F1": 2, "L2": 3, "L1": 2, "F2": 3}

    def test_groups_per_region(self, paper_spec, paper_run):
        plan = construct_plan(paper_spec, paper_run).plan
        assert plan.groups_per_region() == {"F1": 1, "L2": 2, "L1": 1, "F2": 2}

    def test_plan_validates(self, paper_spec, paper_run):
        construct_plan(paper_spec, paper_run).plan.validate()

    def test_context_covers_all_vertices(self, paper_spec, paper_run):
        result = construct_plan(paper_spec, paper_run)
        assert set(result.context) == set(paper_run.vertices())

    def test_shared_fork_terminals_get_root_context(self, paper_spec, paper_run):
        """a1, d1, h1 are dominated only by the whole run (Figure 8, x1)."""
        result = construct_plan(paper_spec, paper_run)
        root = result.plan.root_id
        assert result.context[RunVertex("a", 1)] == root
        assert result.context[RunVertex("d", 1)] == root
        assert result.context[RunVertex("h", 1)] == root

    def test_loop_vertices_get_loop_copy_context(self, paper_spec, paper_run):
        """b1 and c1 share a context (an L2 copy), b2 and c2 share another."""
        result = construct_plan(paper_spec, paper_run)
        context = result.context
        assert context[RunVertex("b", 1)] == context[RunVertex("c", 1)]
        assert context[RunVertex("b", 2)] == context[RunVertex("c", 2)]
        assert context[RunVertex("b", 1)] != context[RunVertex("b", 2)]
        node = result.plan.node(context[RunVertex("b", 1)])
        assert node.kind is PlanNodeKind.LOOP_COPY and node.region == "L2"

    def test_fork_internal_vertices_get_fork_copy_context(self, paper_spec, paper_run):
        """f1, f2, f3 sit in F2 copies (Figure 8: x13, x16, x17)."""
        result = construct_plan(paper_spec, paper_run)
        for instance in (1, 2, 3):
            node = result.plan.node(result.context[RunVertex("f", instance)])
            assert node.kind is PlanNodeKind.FORK_COPY and node.region == "F2"

    def test_empty_fork_copies_exist(self, paper_spec, paper_run):
        """The two F1 copies dominate no vertex directly (x3, x7 are empty)."""
        result = construct_plan(paper_spec, paper_run)
        used = set(result.context.values())
        f1_copies = [
            n for n in result.plan.plus_nodes()
            if n.region == "F1" and n.kind is PlanNodeKind.FORK_COPY
        ]
        assert len(f1_copies) == 2
        assert all(copy.node_id not in used for copy in f1_copies)

    def test_loop_copy_order_follows_serial_edges(self, paper_spec, paper_run):
        """In the L2 group with two copies, the copy holding b1/c1 precedes b2/c2."""
        result = construct_plan(paper_spec, paper_run)
        plan, context = result.plan, result.context
        first_copy = context[RunVertex("b", 1)]
        second_copy = context[RunVertex("b", 2)]
        group = plan.parent(first_copy)
        assert group.node_id == plan.parent(second_copy).node_id
        children = group.children
        assert children.index(first_copy) < children.index(second_copy)

    def test_l1_copies_ordered(self, paper_spec, paper_run):
        result = construct_plan(paper_spec, paper_run)
        plan, context = result.plan, result.context
        first = context[RunVertex("e", 1)]
        second = context[RunVertex("e", 2)]
        group = plan.parent(first)
        assert group.kind is PlanNodeKind.LOOP_GROUP and group.region == "L1"
        assert group.children.index(first) < group.children.index(second)


class TestAgainstGroundTruth:
    """ConstructPlan must recover the plan the generator used."""

    @pytest.mark.parametrize("profile,seed", [
        (ConstantProfile(1), 0),
        (ConstantProfile(2), 1),
        (ConstantProfile(3), 2),
        (PerRegionProfile({"F1": 4, "L1": 3}, default=2), 3),
    ])
    def test_plan_signature_matches(self, paper_spec, profile, seed):
        generated = generate_run(paper_spec, profile, seed=seed)
        result = construct_plan(paper_spec, generated.run)
        assert result.plan.signature() == generated.plan.signature()

    @pytest.mark.parametrize("profile,seed", [
        (ConstantProfile(2), 4),
        (PerRegionProfile({"F1": 3}, default=2), 5),
    ])
    def test_context_sizes_match(self, paper_spec, profile, seed):
        generated = generate_run(paper_spec, profile, seed=seed)
        result = construct_plan(paper_spec, generated.run)
        # same number of nonempty contexts and same multiset of context sizes
        def census(context):
            sizes: dict[int, int] = {}
            for node in context.values():
                sizes[node] = sizes.get(node, 0) + 1
            return sorted(sizes.values())

        assert census(result.context) == census(generated.context)

    def test_synthetic_spec_signature_matches(self, synthetic_spec, synthetic_run):
        result = construct_plan(synthetic_spec, synthetic_run.run)
        assert result.plan.signature() == synthetic_run.plan.signature()

    def test_identity_run_yields_minimal_plan(self, paper_spec):
        run = WorkflowRun.identity_run(paper_spec)
        result = construct_plan(paper_spec, run)
        assert result.plan.copies_per_region() == {"F1": 1, "L2": 1, "L1": 1, "F2": 1}
        assert len(result.plan.plus_nodes()) == 5


class TestConformanceChecking:
    """Non-conforming runs are rejected rather than silently mislabeled."""

    def test_missing_region_rejected(self, paper_spec):
        # a run that skips the d-e-f-g branch entirely
        run = WorkflowRun.from_edges(
            paper_spec,
            [(("a", 1), ("b", 1)), (("b", 1), ("c", 1)), (("c", 1), ("h", 1))],
        )
        with pytest.raises(PlanConstructionError):
            construct_plan(paper_spec, run)

    def test_edge_into_fork_copy_rejected(self, paper_spec):
        """An extra edge into a fork copy's internals breaks self-containment."""
        edges = [
            (("a", 1), ("b", 1)), (("b", 1), ("c", 1)), (("c", 1), ("h", 1)),
            (("a", 1), ("d", 1)), (("d", 1), ("e", 1)), (("e", 1), ("f", 1)),
            (("f", 1), ("g", 1)), (("g", 1), ("h", 1)),
            (("d", 1), ("b", 1)),  # illegal: the F1 copy now has two outside predecessors
        ]
        run = WorkflowRun.from_edges(paper_spec, edges)
        with pytest.raises(PlanConstructionError):
            construct_plan(paper_spec, run)

    def test_branching_loop_chain_rejected(self, paper_spec):
        """A loop sink feeding two successor copies is not a serial chain."""
        edges = [
            (("a", 1), ("b", 1)), (("b", 1), ("c", 1)), (("c", 1), ("h", 1)),
            (("a", 1), ("d", 1)), (("d", 1), ("e", 1)), (("e", 1), ("f", 1)),
            (("f", 1), ("g", 1)),
            (("g", 1), ("e", 2)), (("e", 2), ("f", 2)), (("f", 2), ("g", 2)),
            (("g", 1), ("e", 3)), (("e", 3), ("f", 3)), (("f", 3), ("g", 3)),
            (("g", 2), ("h", 1)), (("g", 3), ("h", 1)),
        ]
        run = WorkflowRun.from_edges(paper_spec, edges)
        with pytest.raises(PlanConstructionError):
            construct_plan(paper_spec, run)
