"""Unit tests for the fork/loop hierarchy TG."""

from __future__ import annotations

import pytest

from repro.exceptions import SpecificationError
from repro.workflow.hierarchy import ROOT_NAME


class TestPaperHierarchy:
    """The hierarchy of Figure 6: root -> {F1 -> L2, L1 -> F2}."""

    def test_size_and_depth(self, paper_spec):
        hierarchy = paper_spec.hierarchy
        assert hierarchy.size == 5
        assert hierarchy.depth == 3

    def test_parent_relationships(self, paper_spec):
        hierarchy = paper_spec.hierarchy
        assert hierarchy.node("F1").parent == ROOT_NAME
        assert hierarchy.node("L1").parent == ROOT_NAME
        assert hierarchy.node("L2").parent == "F1"
        assert hierarchy.node("F2").parent == "L1"

    def test_children(self, paper_spec):
        hierarchy = paper_spec.hierarchy
        assert {c.name for c in hierarchy.children(ROOT_NAME)} == {"F1", "L1"}
        assert {c.name for c in hierarchy.children("F1")} == {"L2"}
        assert hierarchy.children("L2") == []

    def test_depths(self, paper_spec):
        hierarchy = paper_spec.hierarchy
        assert hierarchy.root.depth == 1
        assert hierarchy.node("F1").depth == 2
        assert hierarchy.node("L2").depth == 3

    def test_node_kind_predicates(self, paper_spec):
        hierarchy = paper_spec.hierarchy
        assert hierarchy.root.is_root
        assert hierarchy.node("F1").is_fork
        assert hierarchy.node("L1").is_loop

    def test_parent_of_root_is_none(self, paper_spec):
        assert paper_spec.hierarchy.parent(ROOT_NAME) is None

    def test_unknown_node_raises(self, paper_spec):
        with pytest.raises(SpecificationError):
            paper_spec.hierarchy.node("missing")

    def test_contains_and_len(self, paper_spec):
        hierarchy = paper_spec.hierarchy
        assert "F1" in hierarchy
        assert "missing" not in hierarchy
        assert len(hierarchy) == 5


class TestTraversals:
    def test_preorder_visits_parents_first(self, paper_spec):
        order = [n.name for n in paper_spec.hierarchy.iter_preorder()]
        assert order[0] == ROOT_NAME
        assert order.index("F1") < order.index("L2")
        assert order.index("L1") < order.index("F2")
        assert len(order) == 5

    def test_postorder_visits_children_first(self, paper_spec):
        order = [n.name for n in paper_spec.hierarchy.iter_postorder()]
        assert order[-1] == ROOT_NAME
        assert order.index("L2") < order.index("F1")
        assert order.index("F2") < order.index("L1")

    def test_ancestors(self, paper_spec):
        ancestors = [n.name for n in paper_spec.hierarchy.ancestors("L2")]
        assert ancestors == ["F1", ROOT_NAME]

    def test_descendants(self, paper_spec):
        names = {n.name for n in paper_spec.hierarchy.descendants(ROOT_NAME)}
        assert names == {"F1", "F2", "L1", "L2"}
        assert {n.name for n in paper_spec.hierarchy.descendants("F1")} == {"L2"}

    def test_levels(self, paper_spec):
        levels = paper_spec.hierarchy.levels()
        assert {n.name for n in levels[1]} == {ROOT_NAME}
        assert {n.name for n in levels[2]} == {"F1", "L1"}
        assert {n.name for n in levels[3]} == {"L2", "F2"}

    def test_region_nodes(self, paper_spec):
        assert {n.name for n in paper_spec.hierarchy.region_nodes()} == {"F1", "F2", "L1", "L2"}

    def test_to_dict(self, paper_spec):
        payload = paper_spec.hierarchy.to_dict()
        assert payload["F1"]["parent"] == ROOT_NAME
        assert payload["F1"]["kind"] == "fork"
        assert payload[ROOT_NAME]["kind"] is None

    def test_synthetic_hierarchy_consistency(self, synthetic_spec):
        hierarchy = synthetic_spec.hierarchy
        for node in hierarchy.region_nodes():
            parent = hierarchy.parent(node.name)
            assert node.name in [c.name for c in hierarchy.children(parent.name)]
            assert node.depth == parent.depth + 1
