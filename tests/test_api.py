"""Tests for the unified declarative query API (repro.api)."""

from __future__ import annotations

import pytest

from repro.api import (
    BatchQuery,
    CrossRunQuery,
    DataDependencyQuery,
    DownstreamQuery,
    PointQuery,
    ProvenanceSession,
    UpstreamQuery,
    read_pair_workload,
    write_pair_workload,
)
from repro.engine import QueryEngine, compile_spec_kernel
from repro.exceptions import QueryPlanError, SerializationError, StorageError
from repro.labeling.base import capabilities_of
from repro.labeling.registry import build_index
from repro.skeleton.online import OnlineRun
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size
from repro.workflow.run import RunVertex
from repro.workflow.specification import WorkflowSpecification


@pytest.fixture()
def paper_labeled(paper_spec, paper_run):
    return SkeletonLabeler(paper_spec, "tcm").label_run(paper_run)


@pytest.fixture()
def multi_run_store(paper_spec, paper_run):
    labeler = SkeletonLabeler(paper_spec, "tcm")
    store = ProvenanceStore()
    run_ids = [store.add_labeled_run(labeler.label_run(paper_run))]
    for seed in (1, 2):
        generated = generate_run_with_size(
            paper_spec, 20, seed=seed, name=f"gen-{seed}"
        )
        run_ids.append(store.add_labeled_run(labeler.label_run(generated.run)))
    yield store, run_ids
    store.close()


class TestQueryValidation:
    def test_batch_query_needs_exactly_one_form(self):
        with pytest.raises(QueryPlanError):
            BatchQuery()
        with pytest.raises(QueryPlanError):
            BatchQuery(pairs=[(1, 2)], source_ids=[1], target_ids=[2])
        with pytest.raises(QueryPlanError):
            BatchQuery(source_ids=[1])  # target_ids missing

    def test_cross_run_direction_validated(self):
        with pytest.raises(QueryPlanError):
            CrossRunQuery("spec", ("a", 1), "sideways")

    def test_data_dependency_needs_exactly_one_subject(self):
        with pytest.raises(QueryPlanError):
            DataDependencyQuery("item")
        with pytest.raises(QueryPlanError):
            DataDependencyQuery("item", on_item="x", on_module=("a", 1))


class TestSessionConstruction:
    def test_sniffs_store_index_and_online(self, paper_spec, paper_labeled):
        assert ProvenanceSession(ProvenanceStore()).target_kind == "store"
        assert ProvenanceSession(paper_labeled).target_kind == "index"
        assert (
            ProvenanceSession(OnlineRun(paper_spec)).target_kind == "online"
        )
        index = build_index("tcm", paper_labeled.run.graph)
        assert ProvenanceSession(index).target_kind == "index"

    def test_rejects_unknown_targets(self):
        with pytest.raises(QueryPlanError):
            ProvenanceSession(object())
        with pytest.raises(QueryPlanError):
            ProvenanceSession(None)

    def test_run_id_rejected_off_store(self, paper_labeled):
        session = ProvenanceSession.for_index(paper_labeled)
        with pytest.raises(QueryPlanError):
            session.run(PointQuery(("a", 1), ("h", 1), run_id=1))

    def test_run_id_required_on_store(self, multi_run_store):
        store, _ = multi_run_store
        with pytest.raises(QueryPlanError):
            store.session().run(PointQuery(("a", 1), ("h", 1)))

    def test_store_session_is_cached(self, multi_run_store):
        store, _ = multi_run_store
        assert store.session() is store.session()


class TestIndexSession:
    def test_point_and_batch_match_object_path(self, paper_labeled):
        session = ProvenanceSession.for_index(paper_labeled)
        vertices = paper_labeled.run.vertices()
        pairs = [(u, v) for u in vertices[:6] for v in vertices[:6]]
        batch = session.run(BatchQuery(pairs=pairs))
        for (u, v), answer in zip(pairs, batch):
            assert bool(answer) == paper_labeled.reaches(u, v)
            assert session.run(PointQuery(u, v)) == paper_labeled.reaches(u, v)

    def test_sweeps_match_object_path(self, paper_labeled):
        session = ProvenanceSession.for_index(paper_labeled)
        anchor = RunVertex("a", 1)
        down = session.run(DownstreamQuery(anchor))
        up = session.run(UpstreamQuery(RunVertex("h", 1)))
        assert sorted(down) == sorted(paper_labeled.downstream_of(anchor))
        assert sorted(up) == sorted(paper_labeled.upstream_of(RunVertex("h", 1)))

    def test_direct_index_sweep(self, paper_labeled):
        index = build_index("tcm", paper_labeled.run.graph)
        session = ProvenanceSession.for_index(index)
        down = session.run(DownstreamQuery(RunVertex("a", 1)))
        expected = [
            v
            for v in index.graph.vertices()
            if v != RunVertex("a", 1) and index.reaches(RunVertex("a", 1), v)
        ]
        assert sorted(down) == sorted(expected)

    def test_compiled_plan_is_reusable(self, paper_labeled):
        session = ProvenanceSession.for_index(paper_labeled)
        plan = session.compile(PointQuery(("a", 1), ("h", 1)))
        assert plan.execute() is True
        assert plan.execute() is True

    def test_data_dependency_unplannable_on_index(self, paper_labeled):
        session = ProvenanceSession.for_index(paper_labeled)
        with pytest.raises(QueryPlanError):
            session.run(DataDependencyQuery("item", on_item="other"))

    def test_run_many_fuses_and_preserves_order(self, paper_labeled):
        session = ProvenanceSession.for_index(paper_labeled)
        queries = [
            PointQuery(("a", 1), ("h", 1)),
            DownstreamQuery(("a", 1)),
            PointQuery(("h", 1), ("a", 1)),
            PointQuery(("b", 1), ("c", 1)),
        ]
        answers = session.run_many(queries)
        assert answers[0] is True and answers[2] is False
        assert answers[3] == paper_labeled.reaches(RunVertex("b", 1), RunVertex("c", 1))
        assert sorted(answers[1]) == sorted(
            paper_labeled.downstream_of(RunVertex("a", 1))
        )


class TestStoreSession:
    def test_matches_deprecated_entry_points(self, multi_run_store):
        store, run_ids = multi_run_store
        session = store.session()
        run = store.get_run(run_ids[0])
        vertices = run.vertices()
        pairs = [(u, v) for u in vertices[:5] for v in vertices[:5]]
        batch = session.run(BatchQuery(pairs=pairs, run_id=run_ids[0]))
        with pytest.warns(DeprecationWarning):
            legacy = store.reaches_batch(run_ids[0], pairs)
        assert list(map(bool, batch)) == list(map(bool, legacy))
        with pytest.warns(DeprecationWarning):
            assert session.run(
                PointQuery(("a", 1), ("h", 1), run_id=run_ids[0])
            ) == store.reaches(run_ids[0], ("a", 1), ("h", 1))
        with pytest.warns(DeprecationWarning):
            assert sorted(
                session.run(DownstreamQuery(("a", 1), run_id=run_ids[0]))
            ) == sorted(store.downstream_of(run_ids[0], ("a", 1)))
        with pytest.warns(DeprecationWarning):
            assert sorted(
                session.run(UpstreamQuery(("h", 1), run_id=run_ids[0]))
            ) == sorted(store.upstream_of(run_ids[0], ("h", 1)))

    def test_handle_native_batch(self, multi_run_store):
        store, run_ids = multi_run_store
        session = store.session()
        engine = store.query_engine(run_ids[0])
        run = store.get_run(run_ids[0])
        vertices = run.vertices()
        pairs = [(u, v) for u in vertices[:5] for v in vertices[:5]]
        source_ids, target_ids = engine.intern_pairs(pairs)
        by_ids = session.run(
            BatchQuery(
                source_ids=source_ids, target_ids=target_ids, run_id=run_ids[0]
            )
        )
        by_pairs = session.run(BatchQuery(pairs=pairs, run_id=run_ids[0]))
        assert list(map(bool, by_ids)) == list(map(bool, by_pairs))

    def test_unknown_execution_is_storage_error(self, multi_run_store):
        store, run_ids = multi_run_store
        session = store.session()
        store.query_engine(run_ids[0])  # force the cached-engine batch path
        with pytest.raises(StorageError):
            session.run(
                BatchQuery(pairs=[(("ghost", 1), ("h", 1))], run_id=run_ids[0])
            )

    def test_cross_run_matches_per_run_sweeps(self, multi_run_store):
        store, run_ids = multi_run_store
        result = store.session().run(
            CrossRunQuery("paper-example", ("a", 1), "downstream")
        )
        assert sorted(result.per_run) == sorted(run_ids)
        assert result.skipped_runs == []
        for run_id in run_ids:
            expected = store._dependency_sweep(run_id, ("a", 1), downstream=True)
            assert sorted(result.per_run[run_id]) == sorted(expected)
        assert result.run_count == len(run_ids)
        assert result.affected_count == sum(
            len(found) for found in result.per_run.values()
        )

    def test_cross_run_upstream(self, multi_run_store):
        store, run_ids = multi_run_store
        result = store.session().run(
            CrossRunQuery("paper-example", ("h", 1), "upstream")
        )
        for run_id in run_ids:
            expected = store._dependency_sweep(run_id, ("h", 1), downstream=False)
            assert sorted(result.per_run[run_id]) == sorted(expected)

    def test_cross_run_skips_runs_without_the_anchor(self, multi_run_store):
        store, run_ids = multi_run_store
        # b:3 exists in the Figure 3 run (two L2 iterations plus a second
        # fork copy) but not necessarily in the small generated runs
        result = store.session().run(
            CrossRunQuery("paper-example", ("b", 99), "downstream")
        )
        assert result.per_run == {}
        assert sorted(result.skipped_runs) == sorted(run_ids)

    def test_cross_run_unknown_spec_raises(self, multi_run_store):
        store, _ = multi_run_store
        with pytest.raises(StorageError):
            store.session().run(CrossRunQuery("nope", ("a", 1)))

    def test_cross_run_unplannable_off_store(self, paper_labeled):
        session = ProvenanceSession.for_index(paper_labeled)
        with pytest.raises(QueryPlanError):
            session.run(CrossRunQuery("paper-example", ("a", 1)))

    def test_cross_run_mixed_schemes(self, paper_spec, paper_run):
        # runs of one specification labeled under different spec schemes
        # each sweep through their own shared kernel
        store = ProvenanceStore()
        ids = {}
        for scheme in ("tcm", "tree-cover"):
            labeler = SkeletonLabeler(paper_spec, scheme)
            generated = generate_run_with_size(
                paper_spec, 18, seed=3, name=f"{scheme}-run"
            )
            ids[scheme] = store.add_labeled_run(labeler.label_run(generated.run))
        result = store.session().run(
            CrossRunQuery("paper-example", ("a", 1), "downstream")
        )
        for scheme, run_id in ids.items():
            expected = store._dependency_sweep(run_id, ("a", 1), downstream=True)
            assert sorted(result.per_run[run_id]) == sorted(expected)
        store.close()

    def test_data_dependency_on_store(self, paper_spec, paper_run):
        from repro.provenance.data import DataFlow

        labeled = SkeletonLabeler(paper_spec, "tcm").label_run(paper_run)
        store = ProvenanceStore()
        run_id = store.add_labeled_run(labeled)
        flow = DataFlow(paper_run)
        flow.attach(RunVertex("a", 1), RunVertex("b", 1), ["d-ab"])
        flow.attach(RunVertex("b", 1), RunVertex("c", 1), ["d-bc"])
        store.add_dataflow(run_id, flow)
        session = store.session()
        assert session.run(
            DataDependencyQuery("d-bc", on_item="d-ab", run_id=run_id)
        )
        assert session.run(
            DataDependencyQuery("d-bc", on_module=("a", 1), run_id=run_id)
        )
        assert not session.run(
            DataDependencyQuery("d-ab", on_item="d-bc", run_id=run_id)
        )
        store.close()


class TestOnlineSession:
    def test_answers_track_appends(self, paper_spec):
        online = OnlineRun(paper_spec)
        session = ProvenanceSession.for_online(online)
        root = online.root_scope
        a1 = root.execute("a")
        d1 = root.execute("d")
        online.connect(a1, d1)
        assert session.run(PointQuery(a1, d1)) is True
        kernel = session._target.engine()

        # the incremental kernel persists across appends; an execution in a
        # newly nonempty scope (positions shift) triggers a rebuild, not a
        # new engine, and answers stay fresh
        rebuilds_before = kernel.stats.rebuilds
        l1 = root.begin_execution("L1")
        e1 = l1.new_copy().execute("e")
        online.connect(d1, e1)
        assert session.run(PointQuery(a1, e1)) is True
        assert session._target.engine() is kernel
        assert kernel.stats.rebuilds == rebuilds_before + 1

        # an append into an already-nonempty scope extends the arrays in
        # place instead of recompiling
        a2 = root.execute("a")
        assert session.run(PointQuery(a2, e1)) == online.reaches(a2, e1)
        assert kernel.stats.rebuilds == rebuilds_before + 1
        assert kernel.stats.extensions >= 1

    def test_batch_and_sweeps_match_object_path(self, paper_spec):
        online = OnlineRun(paper_spec)
        session = ProvenanceSession.for_online(online)
        root = online.root_scope
        a1 = root.execute("a")
        d1 = root.execute("d")
        online.connect(a1, d1)
        l1 = root.begin_execution("L1")
        copy1 = l1.new_copy()
        e1 = copy1.execute("e")
        online.connect(d1, e1)
        copy2 = l1.new_copy()
        e2 = copy2.execute("e")
        recorded = [a1, d1, e1, e2]
        pairs = [(u, v) for u in recorded for v in recorded]
        batch = session.run(BatchQuery(pairs=pairs))
        for (u, v), answer in zip(pairs, batch):
            assert bool(answer) == online.reaches(u, v)
        down = session.run(DownstreamQuery(a1))
        expected = [v for v in recorded if v != a1 and online.reaches(a1, v)]
        assert sorted(down) == sorted(expected)

    def test_online_data_dependency(self, paper_spec):
        online = OnlineRun(paper_spec)
        session = ProvenanceSession.for_online(online)
        root = online.root_scope
        a1 = root.execute("a")
        d1 = root.execute("d")
        online.connect(a1, d1)
        online.attach_data(a1, d1, ["item-ad"])
        assert session.run(
            DataDependencyQuery("item-ad", on_module=("a", 1))
        )

    def test_capability_flags_of_online_view(self, paper_spec):
        online = OnlineRun(paper_spec)
        online.root_scope.execute("a")
        view = online.query_view()
        caps = capabilities_of(view)
        assert caps.stable_labels is False
        assert caps.handles is True and caps.sweep_domain is True
        assert caps.kernel_hint is None
        assert caps.batch is True


class TestSharedSpecKernel:
    def test_engines_share_one_spec_kernel(self, paper_spec):
        labeler = SkeletonLabeler(paper_spec, "tree-cover")
        spec_kernel = compile_spec_kernel(labeler.spec_index)
        answers = []
        for seed in (1, 2):
            generated = generate_run_with_size(paper_spec, 20, seed=seed)
            labeled = labeler.label_run(generated.run)
            shared = QueryEngine(labeled, spec_kernel=spec_kernel)
            private = QueryEngine(labeled)
            vertices = generated.run.vertices()
            pairs = [(u, v) for u in vertices[:8] for v in vertices[:8]]
            assert shared.reaches_batch(pairs) == private.reaches_batch(pairs)
            answers.append(shared.kernel_name)
        assert answers == ["numpy-skl", "numpy-skl"] or answers == [
            "python-generic",
            "python-generic",
        ]

    def test_mismatched_spec_kernel_is_ignored(self, paper_spec):
        other_spec = WorkflowSpecification.from_edges(
            edges=[("x", "y"), ("y", "z")], forks=[], loops=[], name="other"
        )
        foreign = compile_spec_kernel(SkeletonLabeler(other_spec, "tcm").spec_index)
        labeler = SkeletonLabeler(paper_spec, "tcm")
        generated = generate_run_with_size(paper_spec, 15, seed=4)
        labeled = labeler.label_run(generated.run)
        engine = QueryEngine(labeled, spec_kernel=foreign)
        vertices = generated.run.vertices()
        expected = [labeled.reaches(u, v) for u in vertices[:5] for v in vertices[:5]]
        got = engine.reaches_batch(
            [(u, v) for u in vertices[:5] for v in vertices[:5]]
        )
        assert list(map(bool, got)) == expected

    def test_store_caches_spec_kernel_per_spec_and_scheme(self, multi_run_store):
        store, run_ids = multi_run_store
        kernels = {store.spec_kernel(run_id) for run_id in run_ids}
        assert len(kernels) == 1  # same spec, same scheme -> one shared kernel


class TestBinaryWorkload:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "pairs.bin"
        count = write_pair_workload(path, [0, 5, 17], [3, 2, 9], run_id=7)
        assert count == 3
        # 16-byte header (magic + run id) + 16 bytes per pair
        assert path.stat().st_size == 16 + 3 * 16
        run_id, source_ids, target_ids = read_pair_workload(path)
        assert run_id == 7
        assert list(source_ids) == [0, 5, 17]
        assert list(target_ids) == [3, 2, 9]

    def test_little_endian_on_disk(self, tmp_path):
        from repro.api.workload import WORKLOAD_MAGIC

        path = tmp_path / "pairs.bin"
        write_pair_workload(path, [1], [258], run_id=4)
        data = path.read_bytes()
        assert data[:8] == WORKLOAD_MAGIC
        assert data[8:16] == (4).to_bytes(8, "little")
        assert data[16:24] == (1).to_bytes(8, "little")
        assert data[24:32] == (258).to_bytes(8, "little")

    def test_wrong_run_rejected(self, tmp_path):
        path = tmp_path / "pairs.bin"
        write_pair_workload(path, [0], [1], run_id=1)
        run_id, _, _ = read_pair_workload(path, expect_run_id=1)
        assert run_id == 1
        with pytest.raises(SerializationError):
            read_pair_workload(path, expect_run_id=2)

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            write_pair_workload(tmp_path / "x.bin", [1, 2], [3], run_id=1)

    def test_headerless_bytes_rejected(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(b"\x01" * 32)  # right length, wrong magic
        with pytest.raises(SerializationError):
            read_pair_workload(path)

    def test_truncated_payload_rejected(self, tmp_path):
        path = tmp_path / "x.bin"
        write_pair_workload(path, [1], [2], run_id=1)
        path.write_bytes(path.read_bytes()[:-3])
        with pytest.raises(SerializationError):
            read_pair_workload(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            read_pair_workload(tmp_path / "nope.bin")

    def test_zero_pair_file_round_trips(self, tmp_path):
        # a header-only workload is legal: zero pairs, not an error
        path = tmp_path / "empty.bin"
        assert write_pair_workload(path, [], [], run_id=3) == 0
        assert path.stat().st_size == 16
        run_id, source_ids, target_ids = read_pair_workload(path, expect_run_id=3)
        assert run_id == 3
        assert len(source_ids) == 0 and len(target_ids) == 0

    def test_truncated_header_rejected(self, tmp_path):
        from repro.api.workload import WORKLOAD_MAGIC

        path = tmp_path / "short.bin"
        # the magic alone, without the run-id half of the header
        path.write_bytes(WORKLOAD_MAGIC)
        with pytest.raises(SerializationError):
            read_pair_workload(path)
        path.write_bytes(b"")
        with pytest.raises(SerializationError):
            read_pair_workload(path)

    def test_mismatched_run_id_message_names_both_runs(self, tmp_path):
        path = tmp_path / "pairs.bin"
        write_pair_workload(path, [0], [1], run_id=12)
        with pytest.raises(SerializationError, match=r"run 12.*run 7"):
            read_pair_workload(path, expect_run_id=7)

    def test_encode_matches_written_file(self, tmp_path):
        from repro.api.workload import encode_pair_workload

        path = tmp_path / "pairs.bin"
        write_pair_workload(path, [0, 5, 17], [3, 2, 9], run_id=7)
        blob = encode_pair_workload([0, 5, 17], [3, 2, 9], run_id=7)
        assert blob == path.read_bytes()

    def test_decode_hand_built_little_endian_bytes(self):
        # the format is little-endian by construction, not by host: a blob
        # assembled byte by byte must decode identically everywhere
        from repro.api.workload import WORKLOAD_MAGIC, decode_pair_workload

        blob = (
            WORKLOAD_MAGIC
            + (4).to_bytes(8, "little")
            + (1).to_bytes(8, "little", signed=True)
            + (258).to_bytes(8, "little", signed=True)
            + (-6).to_bytes(8, "little", signed=True)
            + (2**40).to_bytes(8, "little", signed=True)
        )
        run_id, source_ids, target_ids = decode_pair_workload(blob)
        assert run_id == 4
        assert list(source_ids) == [1, -6]
        assert list(target_ids) == [258, 2**40]

    def test_workload_codec_stdlib_fallback_is_little_endian(self, monkeypatch):
        # force the no-numpy path; it must produce and consume the exact
        # same little-endian bytes as the vectorized path on any host
        import repro.api.workload as workload_module
        from repro.api.workload import WORKLOAD_MAGIC

        encoded_with_numpy = workload_module.encode_pair_workload(
            [1, -6], [258, 2**40], run_id=4
        )
        monkeypatch.setattr(workload_module, "_np", None)
        encoded = workload_module.encode_pair_workload(
            [1, -6], [258, 2**40], run_id=4
        )
        assert encoded == encoded_with_numpy
        assert encoded[:8] == WORKLOAD_MAGIC
        assert encoded[16:24] == (1).to_bytes(8, "little", signed=True)
        run_id, source_ids, target_ids = workload_module.decode_pair_workload(encoded)
        assert run_id == 4
        assert list(source_ids) == [1, -6]
        assert list(target_ids) == [258, 2**40]
