"""Property-based safety of the stack under seeded fault injection (S3).

The contract of every recovery path is *no silent wrong answers and no
hangs*: for any seeded :class:`~repro.faults.FaultPlan` over the
injectable fault set (connection drops, SQL errors, worker crashes) and
any query type on any surface (a local session or a ``repro://`` client),
the caller either gets an answer **bit-identical** to the unfaulted
oracle, or a *typed* error (:class:`~repro.exceptions.ReproError`,
``OSError`` or ``sqlite3.OperationalError``) — never a mangled result,
never an unbounded wait.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import (
    CrossRunBatchQuery,
    CrossRunQuery,
    DownstreamQuery,
    PointQuery,
    ProvenanceSession,
)
from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.exceptions import ReproError
from repro.faults import FaultPlan, FaultRule
from repro.server import RemoteStore, ServerThread
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size

FEW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)

#: the injectable fault set of the property: every (point, kind) pair a
#: plan may arm, spanning transport, SQL and worker-crash shapes
FAULT_CASES = (
    ("client.send", "oserror"),
    ("client.recv", "oserror"),
    ("pool.task", "crash"),
    ("pool.submit", "oserror"),
    ("pushdown.sql", "sql"),
    ("store.load_label_arrays", "sql"),
)

#: what a caller may legitimately see instead of the oracle answer
TYPED_ERRORS = (ReproError, OSError, sqlite3.OperationalError)


@pytest.fixture(scope="module")
def fault_world(tmp_path_factory):
    """A pushdown-capable local store with several runs, behind a server."""
    spec = generate_specification(
        SyntheticSpecConfig(
            n_modules=12,
            n_edges=11,
            hierarchy_size=4,
            hierarchy_depth=2,
            name="fault-prop",
            seed=19,
        )
    )
    labeler = SkeletonLabeler(spec, "interval")
    store = ProvenanceStore(tmp_path_factory.mktemp("fault-prop") / "prov.db")
    anchor = None
    run_ids = []
    for index in range(5):
        generated = generate_run_with_size(
            spec, 30, seed=index, name=f"prop-{index}"
        )
        run_ids.append(store.add_labeled_run(labeler.label_run(generated.run)))
        if anchor is None:
            vertex = generated.run.vertices()[0]
            anchor = (vertex.module, vertex.instance)
    with ServerThread(store) as server:
        yield store, server, spec, anchor, run_ids
    store.close()


def _queries(spec, anchor, run_ids):
    pairs = [(anchor, anchor), (anchor, (anchor[0], anchor[1] + 1))]
    return {
        "point": PointQuery(anchor, anchor, run_id=run_ids[0]),
        "sweep": DownstreamQuery(anchor, run_id=run_ids[0], pushdown="auto"),
        "sweep-pushdown": DownstreamQuery(
            anchor, run_id=run_ids[0], pushdown="always"
        ),
        "cross": CrossRunQuery(spec.name, anchor, workers=2),
        "cross-pushdown": CrossRunQuery(
            spec.name, anchor, workers=2, pushdown="always"
        ),
        "cross-batch": CrossRunBatchQuery(spec.name, pairs, workers=2),
    }


@FEW
@given(
    case=st.sampled_from(FAULT_CASES),
    trigger=st.one_of(
        st.integers(min_value=1, max_value=3).map(lambda n: {"nth": n}),
        st.floats(min_value=0.05, max_value=0.5).map(lambda p: {"p": p}),
    ),
    seed=st.integers(min_value=0, max_value=2**16),
    query_name=st.sampled_from(
        ("point", "sweep", "sweep-pushdown", "cross", "cross-pushdown", "cross-batch")
    ),
    surface=st.sampled_from(("local", "remote")),
)
def test_faulted_queries_match_oracle_or_raise_typed(
    fault_world, case, trigger, seed, query_name, surface
):
    store, server, spec, anchor, run_ids = fault_world
    point, kind = case
    query = _queries(spec, anchor, run_ids)[query_name]
    plan = FaultPlan([FaultRule(point, kind, **trigger)], seed=seed)

    if surface == "local":
        session = ProvenanceSession(store)
        oracle = session.run(query)
        with plan.active():
            try:
                result = session.run(query)
            except TYPED_ERRORS:
                return  # a typed refusal is within contract
        assert result == oracle
    else:
        with RemoteStore(
            server.url, retries=3, backoff_base=0.005, retry_seed=seed
        ) as client:
            session = client.session()
            oracle = session.run(query)
            with plan.active():
                try:
                    result = session.run(query)
                except TYPED_ERRORS:
                    return
            assert result == oracle


@FEW
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    p=st.floats(min_value=0.02, max_value=0.1),
)
def test_chaos_profile_is_always_transparent(fault_world, seed, p):
    """The ``chaos`` points recover transparently: answers only, no errors."""
    store, server, spec, anchor, run_ids = fault_world
    from repro.faults import parse_fault_spec

    plan = parse_fault_spec(f"chaos:p={p};seed={seed}")
    # the retry budget dominates the flake floor: at p=0.1 an attempt fails
    # with probability ~0.3 (send + recv + reconnect handshake), so nine
    # attempts put residual failure below 1e-4
    with RemoteStore(
        server.url, retries=8, backoff_base=0.005, retry_seed=seed
    ) as client:
        session = client.session()
        query = CrossRunQuery(spec.name, anchor, workers=2)
        oracle = session.run(query)
        with plan.active():
            assert session.run(query) == oracle
