"""The interned vertex-handle core: identity layer, handle APIs, store engine."""

from __future__ import annotations

import sqlite3

import pytest

import repro.storage.database as database_module
import repro.storage.store as store_module
from repro.engine import QueryEngine
from repro.engine.kernels import HAS_NUMPY, _GenericKernel, build_kernel
from repro.exceptions import LabelingError, StorageError, VertexNotFoundError
from repro.graphs.digraph import DiGraph
from repro.graphs.handles import VertexInterner, resolve_pair_ids
from repro.labeling.registry import available_schemes, build_index
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.store import (
    LABEL_FETCH_CHUNK,
    SQLITE_MAX_VARIABLE_NUMBER,
    ProvenanceStore,
    row_value_chunk,
)
from repro.workflow.run import RunVertex


def small_dag() -> DiGraph:
    return DiGraph(
        edges=[
            ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"),
            ("d", "e"), ("c", "f"), ("x", "y"),
        ]
    )


def all_pairs(graph: DiGraph):
    vertices = graph.vertices()
    return [(u, v) for u in vertices for v in vertices]


# ----------------------------------------------------------------------
# the identity layer (repro.graphs.handles)
# ----------------------------------------------------------------------
class TestVertexInterner:
    def test_moved_module_and_back_compat_import(self):
        from repro.graphs.csr import VertexInterner as FromCSR

        assert FromCSR is VertexInterner

    def test_id_map_and_vertices_are_consistent(self):
        interner = VertexInterner(["a", "b", "c"])
        assert interner.id_map == {"a": 0, "b": 1, "c": 2}
        assert interner.vertices() == ["a", "b", "c"]
        assert interner.intern_many(["c", "d"]) == [2, 3]
        assert len(interner) == 4

    def test_resolve_pair_ids_round_trip(self):
        interner = VertexInterner(["a", "b", "c"])
        sources, targets = resolve_pair_ids(
            interner.id_map, [("a", "c"), ("c", "b"), ("b", "b")]
        )
        assert list(sources) == [0, 2, 1]
        assert list(targets) == [2, 1, 1]

    def test_resolve_pair_ids_unknown_vertex(self):
        interner = VertexInterner(["a"])
        with pytest.raises(VertexNotFoundError):
            resolve_pair_ids(interner.id_map, [("a", "ghost")])

    def test_resolve_pair_ids_empty(self):
        sources, targets = resolve_pair_ids({}, [])
        assert list(sources) == [] and list(targets) == []


class TestDiGraphIdentity:
    def test_vertex_version_tracks_vertex_set_only(self):
        graph = DiGraph()
        version = graph.vertex_version
        graph.add_vertex("a")
        graph.add_vertex("a")  # no-op re-insert
        assert graph.vertex_version == version + 1
        graph.add_edge("a", "b")  # adds vertex b
        after_edge_with_new_vertex = graph.vertex_version
        assert after_edge_with_new_vertex == version + 2
        graph.add_edge("b", "a")  # pure edge mutation: identity preserved
        graph.remove_edge("b", "a")
        assert graph.vertex_version == after_edge_with_new_vertex
        graph.remove_vertex("b")
        assert graph.vertex_version == after_edge_with_new_vertex + 1

    def test_intern_vertices_snapshot_matches_csr(self):
        graph = small_dag()
        interner = graph.intern_vertices()
        csr = graph.to_csr()
        assert interner.vertices() == graph.vertices()
        for vertex in graph.vertices():
            assert interner.id_of(vertex) == csr.id_of(vertex)


# ----------------------------------------------------------------------
# the handle API on labeling indexes
# ----------------------------------------------------------------------
class TestIndexHandleAPI:
    @pytest.mark.parametrize("scheme", sorted(set(available_schemes()) - {"interval"}))
    def test_handle_answers_match_object_answers(self, scheme):
        graph = small_dag()
        index = build_index(scheme, graph)
        pairs = all_pairs(graph)
        expected = [index.reaches(u, v) for u, v in pairs]
        sources, targets = index.intern_pairs(pairs)
        assert [bool(a) for a in index.reaches_many_ids(sources, targets)] == expected
        for (u, v), answer in zip(pairs, expected):
            assert index.reaches_ids(index.intern(u), index.intern(v)) == answer

    def test_intern_unknown_vertex_raises_labeling_error(self):
        index = build_index("tcm", small_dag())
        with pytest.raises(LabelingError):
            index.intern("ghost")
        with pytest.raises(LabelingError):
            index.intern_pairs([("a", "ghost")])

    def test_out_of_range_handles_raise(self):
        index = build_index("tcm", small_dag())
        size = len(index.interner)
        with pytest.raises(LabelingError):
            index.reaches_ids(0, size)
        with pytest.raises(LabelingError):
            index.reaches_ids(-1, 0)
        with pytest.raises(LabelingError):
            index.reaches_many_ids([0, size], [0, 0])
        with pytest.raises(LabelingError):
            index.reaches_many_ids([0], [-3])

    def test_mismatched_handle_sequences_raise(self):
        index = build_index("tcm", small_dag())
        with pytest.raises(LabelingError):
            index.reaches_many_ids([0, 1], [0])

    def test_traversal_handles_survive_edge_mutations(self):
        graph = DiGraph(edges=[("a", "b"), ("c", "d")])
        index = build_index("bfs", graph)
        b, c = index.intern("b"), index.intern("c")
        assert index.reaches_ids(b, c) is False
        graph.add_edge("b", "c")  # edge surgery keeps handles valid
        assert index.reaches_ids(b, c) is True
        assert list(index.reaches_many_ids([b], [c])) == [True]

    def test_traversal_handles_go_stale_on_vertex_changes(self):
        graph = DiGraph(edges=[("a", "b")])
        index = build_index("bfs", graph)
        index.intern("a")  # builds the interner
        graph.add_vertex("late")
        with pytest.raises(LabelingError, match="stale"):
            index.reaches_ids(0, 1)
        with pytest.raises(LabelingError, match="stale"):
            index.intern("a")

    def test_tcm_handles_follow_closure_order(self):
        graph = small_dag()
        index = build_index("tcm", graph)
        for position, vertex in enumerate(index.closure.order):
            assert index.intern(vertex) == position


class TestSkeletonRunHandleAPI:
    def test_handle_answers_match_object_answers(self, paper_labeled_run):
        vertices = paper_labeled_run.run.vertices()
        pairs = [(u, v) for u in vertices for v in vertices]
        expected = [paper_labeled_run.reaches(u, v) for u, v in pairs]
        sources, targets = paper_labeled_run.intern_pairs(pairs)
        answers = paper_labeled_run.reaches_many_ids(sources, targets)
        assert [bool(a) for a in answers] == expected

    def test_intern_vertex_at_round_trip(self, paper_labeled_run):
        for vertex in paper_labeled_run.run.vertices():
            assert paper_labeled_run.vertex_at(paper_labeled_run.intern(vertex)) == vertex
        with pytest.raises(LabelingError):
            paper_labeled_run.vertex_at(10_000)
        with pytest.raises(LabelingError):
            paper_labeled_run.intern(RunVertex("ghost", 1))

    def test_frozen_run_labels_cache_their_handle_table(self):
        # Even over a traversal-backed (unstable) spec index the run labels
        # are frozen, so the handle label table must be built exactly once,
        # not rebuilt per point query.
        from conftest import make_paper_run, make_paper_specification

        spec = make_paper_specification()
        labeled = SkeletonLabeler(spec, "bfs").label_run(make_paper_run(spec))
        assert labeled.stable_labels is False
        a = labeled.intern(RunVertex("a", 1))
        h = labeled.intern(RunVertex("h", 1))
        assert labeled.reaches_ids(a, h) is True
        table = labeled._handle_label_table
        assert table is not None
        labeled.reaches_ids(h, a)
        assert labeled._handle_label_table is table  # reused, not rebuilt

    def test_handles_stay_valid_over_unstable_spec_index(self):
        from conftest import make_paper_run, make_paper_specification

        spec = make_paper_specification()
        run = make_paper_run(spec)
        labeled = SkeletonLabeler(spec, "bfs").label_run(run)
        assert labeled.stable_labels is False
        a = labeled.intern(RunVertex("a", 1))
        h = labeled.intern(RunVertex("h", 1))
        assert labeled.reaches_ids(a, h) is True
        # run handles are frozen at labeling time: mutating the *spec* graph
        # must not invalidate them (the fall-through stays live)
        spec.graph.add_edge("c", "d")
        assert labeled.reaches_ids(a, h) is True


# ----------------------------------------------------------------------
# the engine's handle surface
# ----------------------------------------------------------------------
class TestEngineHandleAPI:
    def test_intern_pairs_and_reaches_many_ids_match_batch(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run)
        vertices = paper_labeled_run.run.vertices()
        pairs = [(u, v) for u in vertices for v in vertices]
        expected = engine.reaches_batch(pairs)
        sources, targets = engine.intern_pairs(pairs)
        assert [bool(a) for a in engine.reaches_many_ids(sources, targets)] == expected

    @pytest.mark.parametrize("scheme", sorted(set(available_schemes()) - {"interval"}))
    def test_every_kernel_answers_handles(self, scheme):
        graph = small_dag()
        index = build_index(scheme, graph)
        engine = QueryEngine(index)
        pairs = all_pairs(graph)
        expected = [index.reaches(u, v) for u, v in pairs]
        sources, targets = engine.intern_pairs(pairs)
        assert [bool(a) for a in engine.reaches_many_ids(sources, targets)] == expected

    def test_generic_kernel_handle_path_matches(self, paper_labeled_run):
        kernel = _GenericKernel(paper_labeled_run)
        vertices = paper_labeled_run.run.vertices()
        pairs = [(u, v) for u in vertices for v in vertices]
        sources, targets = paper_labeled_run.intern_pairs(pairs)
        assert [bool(a) for a in kernel.batch_ids(sources, targets)] == [
            bool(a) for a in kernel.batch(pairs)
        ]

    def test_generic_kernel_without_handles_raises(self):
        class FakeIndex:
            def label_of(self, vertex):
                return vertex

            def reaches_labels(self, a, b):
                return a <= b

            def reaches(self, a, b):
                return self.reaches_labels(a, b)

        kernel = build_kernel(FakeIndex())
        assert kernel.name == "python-generic"
        with pytest.raises(LabelingError):
            kernel.batch_ids([0], [1])
        engine = QueryEngine(FakeIndex())
        with pytest.raises(LabelingError):
            engine.interner
        with pytest.raises(LabelingError):
            engine.reaches_ids(0, 1)

    def test_engine_handle_errors(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run)
        size = len(engine.interner)
        with pytest.raises(LabelingError):
            engine.reaches_many_ids([0], [size])
        with pytest.raises(LabelingError):
            engine.reaches_many_ids([-1], [0])
        with pytest.raises(LabelingError):
            engine.intern(RunVertex("ghost", 1))
        with pytest.raises(LabelingError):
            engine.intern_pairs([(RunVertex("a", 1), RunVertex("ghost", 1))])

    def test_stats_count_handle_batches(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run)
        sources, targets = engine.intern_pairs(
            [(RunVertex("a", 1), RunVertex("h", 1))] * 3
        )
        engine.reaches_many_ids(sources, targets)
        assert engine.stats.queries == 3
        assert engine.stats.batches == 1


class TestEngineHandleCache:
    def test_point_cache_is_keyed_on_handle_pairs(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run)
        a, h = RunVertex("a", 1), RunVertex("h", 1)
        assert engine.reaches(a, h) is True
        a_id, h_id = engine.intern(a), engine.intern(h)
        # the raw cache keys are interned handle pairs ...
        assert (a_id, h_id) in set(engine._pair_cache.keys())
        # ... and a handle-keyed point query hits the same entry without
        # resolving any vertex object
        engine.stats.reset()
        assert engine.reaches_ids(a_id, h_id) is True
        assert engine.stats.cache_hits == 1

    def test_object_queries_share_the_handle_cache(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run)
        a, h = RunVertex("a", 1), RunVertex("h", 1)
        assert engine.reaches_ids(engine.intern(a), engine.intern(h)) is True
        assert engine.reaches(a, h) is True
        assert engine.stats.cache_hits == 1

    def test_vertex_pair_membership_still_resolves(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run)
        a, h = RunVertex("a", 1), RunVertex("h", 1)
        engine.reaches(a, h)
        assert (a, h) in engine._pair_cache  # translated through the interner
        assert (h, a) not in engine._pair_cache
        assert (RunVertex("ghost", 1), a) not in engine._pair_cache

    def test_reaches_ids_bypasses_cache_for_unstable_indexes(self):
        graph = DiGraph(edges=[("a", "b"), ("c", "d")])
        index = build_index("bfs", graph)
        engine = QueryEngine(index)
        b, c = index.intern("b"), index.intern("c")
        assert engine.reaches_ids(b, c) is False
        graph.add_edge("b", "c")
        assert engine.reaches_ids(b, c) is True  # never memoized


# ----------------------------------------------------------------------
# the store: chunk guard, persisted interner, cached engine
# ----------------------------------------------------------------------
class TestRowValueChunkGuard:
    def test_default_chunk_respects_parameter_limit(self):
        chunk = row_value_chunk(columns_per_row=2, reserved=1)
        assert chunk == LABEL_FETCH_CHUNK  # 2 * 400 + 1 = 801 <= 999
        assert chunk * 2 + 1 <= SQLITE_MAX_VARIABLE_NUMBER

    def test_oversized_configured_chunk_is_capped(self, monkeypatch):
        # the chunk logic lives in storage.database (shared with the SQL
        # pushdown's IN lists); store re-exports it unchanged
        monkeypatch.setattr(database_module, "LABEL_FETCH_CHUNK", 10_000)
        chunk = store_module.row_value_chunk(columns_per_row=2, reserved=1)
        assert chunk == (SQLITE_MAX_VARIABLE_NUMBER - 1) // 2  # 499
        assert chunk * 2 + 1 <= SQLITE_MAX_VARIABLE_NUMBER

    def test_wider_rows_shrink_the_chunk(self):
        # a future column addition must tighten the cap, not overflow SQLite
        assert row_value_chunk(columns_per_row=3, reserved=1) == (
            SQLITE_MAX_VARIABLE_NUMBER - 1
        ) // 3
        for columns in (2, 3, 5, 8):
            chunk = row_value_chunk(columns_per_row=columns, reserved=1)
            assert chunk * columns + 1 <= SQLITE_MAX_VARIABLE_NUMBER

    def test_impossible_row_width_raises(self):
        with pytest.raises(ValueError):
            row_value_chunk(columns_per_row=SQLITE_MAX_VARIABLE_NUMBER + 1)
        with pytest.raises(ValueError):
            row_value_chunk(columns_per_row=0)

    def test_oversized_chunk_would_overflow_sqlite_without_the_guard(
        self, monkeypatch, synthetic_spec, synthetic_run
    ):
        # With LABEL_FETCH_CHUNK forced past the limit, only the guard keeps
        # the row-value SELECT under 999 bound parameters.
        labeled = SkeletonLabeler(synthetic_spec, "tcm").label_run(
            synthetic_run.run, plan=synthetic_run.plan, context=synthetic_run.context
        )
        monkeypatch.setattr(database_module, "LABEL_FETCH_CHUNK", 600)
        with ProvenanceStore(":memory:") as store:
            run_id = store.add_labeled_run(labeled)
            executions = [
                (v.module, v.instance) for v in synthetic_run.run.vertices()
            ]
            assert len(executions) > 499  # forces multiple capped chunks
            labels = store.labels_of_many(run_id, executions)
            assert len(labels) == len(executions)


@pytest.mark.filterwarnings("ignore:ProvenanceStore:DeprecationWarning")
class TestStoredEngine:
    @pytest.fixture()
    def store(self) -> ProvenanceStore:
        with ProvenanceStore(":memory:") as opened:
            yield opened

    def test_query_engine_is_cached_and_correct(self, store, paper_labeled_run):
        run_id = store.add_labeled_run(paper_labeled_run)
        engine = store.query_engine(run_id)
        assert store.query_engine(run_id) is engine
        vertices = paper_labeled_run.run.vertices()
        pairs = [(u, v) for u in vertices for v in vertices]
        sources, targets = engine.intern_pairs(pairs)
        answers = engine.reaches_many_ids(sources, targets)
        assert [bool(a) for a in answers] == [
            paper_labeled_run.reaches(u, v) for u, v in pairs
        ]

    def test_persisted_interner_reassigns_original_handles(
        self, store, paper_labeled_run
    ):
        run_id = store.add_labeled_run(paper_labeled_run)
        stored_interner = store.query_engine(run_id).interner
        for vertex in paper_labeled_run.run.vertices():
            assert (
                stored_interner.id_of((vertex.module, vertex.instance))
                == paper_labeled_run.intern(vertex)
            )

    def test_replayed_batches_are_sql_free(self, store, paper_labeled_run):
        run_id = store.add_labeled_run(paper_labeled_run)
        pairs = [(("a", 1), ("h", 1)), (("h", 1), ("a", 1))]
        store.query_engine(run_id)  # loads all labels, compiles the kernel
        statements: list[str] = []
        store._connection.set_trace_callback(statements.append)
        try:
            assert store.reaches_batch(run_id, pairs) == [True, False]
            assert store.reaches_batch(run_id, pairs) == [True, False]
            store.downstream_of(run_id, ("a", 1))
        finally:
            store._connection.set_trace_callback(None)
        assert not any("SELECT" in s for s in statements)

    def test_stored_run_cache_is_bounded(self, store, synthetic_spec, synthetic_run):
        import repro.storage.store as store_module

        labeler = SkeletonLabeler(synthetic_spec, "tcm")
        labeled = labeler.label_run(
            synthetic_run.run, plan=synthetic_run.plan, context=synthetic_run.context
        )
        original_name = labeled.run.name
        run_ids = []
        try:
            for i in range(store_module.STORED_RUN_CACHE_LIMIT + 3):
                labeled.run.name = f"bounded-{i}"
                run_ids.append(store.add_labeled_run(labeled))
        finally:
            labeled.run.name = original_name  # the run fixture is shared
        for run_id in run_ids:
            store.query_engine(run_id)
        assert len(store._stored_run_cache) == store_module.STORED_RUN_CACHE_LIMIT
        assert len(store._engine_cache) <= store_module.STORED_RUN_CACHE_LIMIT
        # the least-recently-queried runs were evicted, the newest survive
        assert run_ids[-1] in store._stored_run_cache
        assert run_ids[0] not in store._stored_run_cache
        # evicted runs still answer (labels re-fetched transparently)
        first_pair = [synthetic_run.run.vertices()[0]] * 2
        assert store.reaches_batch(run_ids[0], [tuple(first_pair)]) == [True]

    def test_legacy_rows_without_vertex_ids_still_answer(
        self, store, paper_labeled_run
    ):
        run_id = store.add_labeled_run(paper_labeled_run)
        with store._connection:
            store._connection.execute(
                "UPDATE run_labels SET vertex_id = NULL WHERE run_id = ?", (run_id,)
            )
        store._stored_run_cache.clear()
        store._engine_cache.clear()
        engine = store.query_engine(run_id)
        vertices = paper_labeled_run.run.vertices()
        pairs = [(u, v) for u in vertices for v in vertices]
        sources, targets = engine.intern_pairs(pairs)
        assert [bool(a) for a in engine.reaches_many_ids(sources, targets)] == [
            paper_labeled_run.reaches(u, v) for u, v in pairs
        ]

    def test_delete_run_evicts_cached_engine(self, store, paper_labeled_run):
        run_id = store.add_labeled_run(paper_labeled_run)
        store.query_engine(run_id)
        assert store._engine_cache and store._stored_run_cache
        store.delete_run(run_id)
        assert not store._engine_cache
        assert not store._stored_run_cache
        with pytest.raises(StorageError):
            store.query_engine(run_id)

    def test_unknown_execution_still_raises_storage_error(
        self, store, paper_labeled_run
    ):
        run_id = store.add_labeled_run(paper_labeled_run)
        with pytest.raises(StorageError):
            store.reaches_batch(run_id, [(("a", 1), ("ghost", 9))])
        store.query_engine(run_id)  # full mode changes nothing about errors
        with pytest.raises(StorageError):
            store.reaches_batch(run_id, [(("a", 1), ("ghost", 9))])

    def test_schema_migration_adds_vertex_id_column(self, tmp_path):
        # A database written by schema version 1 (no vertex_id column) must
        # be migrated in place when reopened.
        path = tmp_path / "legacy.db"
        connection = sqlite3.connect(path)
        with connection:
            connection.execute(
                "CREATE TABLE run_labels ("
                "run_id INTEGER NOT NULL, module TEXT NOT NULL, "
                "instance INTEGER NOT NULL, q1 INTEGER NOT NULL, "
                "q2 INTEGER NOT NULL, q3 INTEGER NOT NULL, "
                "skeleton TEXT NOT NULL, "
                "PRIMARY KEY (run_id, module, instance))"
            )
        connection.close()
        with ProvenanceStore(path) as store:
            columns = {
                row[1]
                for row in store._connection.execute("PRAGMA table_info(run_labels)")
            }
            assert "vertex_id" in columns
