"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.workflow.serialization import read_run, read_specification, write_run, write_specification


class TestParser:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        subactions = [
            action for action in parser._actions if hasattr(action, "choices") and action.choices
        ]
        commands = set(subactions[0].choices)
        assert commands == {
            "generate-spec", "generate-run", "label", "query", "query-batch",
            "pack-workload", "sweep", "cross-batch", "serve", "health",
            "stats", "rebalance", "replicate", "routing",
            "verify", "info", "experiments",
        }

    def test_missing_command_errors(self, capsys):
        with pytest.raises(SystemExit):
            main([])


class TestGenerateCommands:
    def test_generate_spec_and_run(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        exit_code = main([
            "generate-spec", "--modules", "40", "--edges", "60", "--regions", "5",
            "--depth", "3", "--seed", "1", "--output", str(spec_path),
        ])
        assert exit_code == 0
        spec = read_specification(spec_path)
        assert spec.vertex_count == 40 and spec.edge_count == 60

        run_path = tmp_path / "run.json"
        exit_code = main([
            "generate-run", "--spec", str(spec_path), "--size", "300",
            "--seed", "2", "--output", str(run_path),
        ])
        assert exit_code == 0
        run = read_run(run_path, spec)
        assert run.vertex_count >= 300
        output = capsys.readouterr().out
        assert "wrote specification" in output and "wrote run" in output

    def test_generate_spec_infeasible_parameters(self, tmp_path, capsys):
        exit_code = main([
            "generate-spec", "--modules", "5", "--edges", "100", "--regions", "10",
            "--depth", "4", "--output", str(tmp_path / "bad.json"),
        ])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err


class TestLabelAndQuery:
    @pytest.fixture()
    def labeled_database(self, tmp_path, paper_spec, paper_run):
        spec_path = tmp_path / "spec.json"
        run_path = tmp_path / "run.json"
        database = tmp_path / "prov.db"
        write_specification(paper_spec, spec_path)
        write_run(paper_run, run_path)
        exit_code = main([
            "label", "--spec", str(spec_path), "--run", str(run_path),
            "--database", str(database),
        ])
        assert exit_code == 0
        return database

    def test_query_reachable(self, labeled_database, capsys):
        exit_code = main([
            "query", "--database", str(labeled_database), "--run-id", "1",
            "--source", "a:1", "--target", "h:1",
        ])
        assert exit_code == 0
        assert "reaches" in capsys.readouterr().out

    def test_query_unreachable(self, labeled_database, capsys):
        exit_code = main([
            "query", "--database", str(labeled_database), "--run-id", "1",
            "--source", "b:1", "--target", "c:3",
        ])
        assert exit_code == 1
        assert "does not reach" in capsys.readouterr().out

    def test_query_bad_execution_format(self, labeled_database, capsys):
        exit_code = main([
            "query", "--database", str(labeled_database), "--run-id", "1",
            "--source", "a1", "--target", "h:1",
        ])
        assert exit_code == 2


class TestQueryBatch:
    @pytest.fixture()
    def labeled_database(self, tmp_path, paper_spec, paper_run):
        spec_path = tmp_path / "spec.json"
        run_path = tmp_path / "run.json"
        database = tmp_path / "prov.db"
        write_specification(paper_spec, spec_path)
        write_run(paper_run, run_path)
        assert main([
            "label", "--spec", str(spec_path), "--run", str(run_path),
            "--database", str(database),
        ]) == 0
        return database

    def test_query_batch_answers_every_pair(self, labeled_database, tmp_path, capsys):
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text(
            "# provenance queries\n"
            "a:1 h:1\n"
            "\n"
            "h:1 a:1\n"
            "b:1 c:2\n"
        )
        exit_code = main([
            "query-batch", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(pairs_path),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "a:1 reaches h:1" in output
        assert "h:1 does-not-reach a:1" in output
        assert "b:1 reaches c:2" in output
        assert "answered 3 queries" in output and "2 reachable" in output

    def test_query_batch_summary_only(self, labeled_database, tmp_path, capsys):
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("a:1 h:1\nh:1 a:1\n")
        exit_code = main([
            "query-batch", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(pairs_path), "--summary-only",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "answered 2 queries" in output
        assert "reaches h:1" not in output

    def test_query_batch_matches_single_queries(self, labeled_database, tmp_path, capsys):
        queries = [("a:1", "h:1"), ("b:1", "c:3"), ("e:1", "f:2"), ("c:1", "b:2")]
        single = []
        for source, target in queries:
            code = main([
                "query", "--database", str(labeled_database), "--run-id", "1",
                "--source", source, "--target", target,
            ])
            single.append(code == 0)
        capsys.readouterr()
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("".join(f"{s} {t}\n" for s, t in queries))
        assert main([
            "query-batch", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(pairs_path),
        ]) == 0
        output = capsys.readouterr().out
        for (source, target), answer in zip(queries, single):
            verdict = "reaches" if answer else "does-not-reach"
            assert f"{source} {verdict} {target}" in output

    def test_query_batch_large_file_uses_handle_path(
        self, labeled_database, tmp_path, capsys
    ):
        # Past _HANDLE_PATH_MIN_PAIRS the CLI interns the whole file once
        # through the store's cached engine; answers must be identical to
        # the small-file path.
        from repro.cli import _HANDLE_PATH_MIN_PAIRS

        lines = ["a:1 h:1", "h:1 a:1", "b:1 c:2"]
        repeats = _HANDLE_PATH_MIN_PAIRS // len(lines) + 1
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("".join(f"{line}\n" for line in lines * repeats))
        exit_code = main([
            "query-batch", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(pairs_path), "--summary-only",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        total = len(lines) * repeats
        assert f"answered {total} queries" in output
        assert f"{2 * repeats} reachable" in output

    def test_query_batch_from_stdin(self, labeled_database, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("a:1 h:1\n"))
        exit_code = main([
            "query-batch", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", "-",
        ])
        assert exit_code == 0
        assert "a:1 reaches h:1" in capsys.readouterr().out

    def test_query_batch_malformed_line_errors(self, labeled_database, tmp_path, capsys):
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("a:1 h:1 extra\n")
        exit_code = main([
            "query-batch", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(pairs_path),
        ])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_query_batch_empty_file_errors(self, labeled_database, tmp_path, capsys):
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("# nothing here\n")
        exit_code = main([
            "query-batch", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(pairs_path),
        ])
        assert exit_code == 2

    def test_query_batch_missing_file_errors(self, labeled_database, tmp_path, capsys):
        exit_code = main([
            "query-batch", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(tmp_path / "nope.txt"),
        ])
        assert exit_code == 2


class TestQueryBatchErrors:
    @pytest.fixture()
    def labeled_database(self, tmp_path, paper_spec, paper_run):
        spec_path = tmp_path / "spec.json"
        run_path = tmp_path / "run.json"
        database = tmp_path / "prov.db"
        write_specification(paper_spec, spec_path)
        write_run(paper_run, run_path)
        assert main([
            "label", "--spec", str(spec_path), "--run", str(run_path),
            "--database", str(database),
        ]) == 0
        return database

    def test_unknown_execution_reports_file_line_and_token(
        self, labeled_database, tmp_path, capsys
    ):
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text(
            "# header comment\n"
            "a:1 h:1\n"
            "\n"
            "a:1 nosuch:7\n"
        )
        exit_code = main([
            "query-batch", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(pairs_path),
        ])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "line 4" in err
        assert "'nosuch:7'" in err
        assert "run 1" in err

    def test_unknown_source_on_large_handle_path(
        self, labeled_database, tmp_path, capsys
    ):
        from repro.api.plans import HANDLE_PATH_MIN_PAIRS

        lines = ["a:1 h:1"] * HANDLE_PATH_MIN_PAIRS + ["ghost:1 h:1"]
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("".join(f"{line}\n" for line in lines))
        exit_code = main([
            "query-batch", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(pairs_path), "--summary-only",
        ])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert f"line {len(lines)}" in err and "'ghost:1'" in err

    def test_unknown_run_still_errors_cleanly(
        self, labeled_database, tmp_path, capsys
    ):
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("a:1 h:1\n")
        exit_code = main([
            "query-batch", "--database", str(labeled_database), "--run-id", "99",
            "--pairs", str(pairs_path),
        ])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err


class TestBinaryWorkload:
    @pytest.fixture()
    def labeled_database(self, tmp_path, paper_spec, paper_run):
        spec_path = tmp_path / "spec.json"
        run_path = tmp_path / "run.json"
        database = tmp_path / "prov.db"
        write_specification(paper_spec, spec_path)
        write_run(paper_run, run_path)
        assert main([
            "label", "--spec", str(spec_path), "--run", str(run_path),
            "--database", str(database),
        ]) == 0
        return database

    def test_pack_then_query_matches_text_path(
        self, labeled_database, tmp_path, capsys
    ):
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("a:1 h:1\nh:1 a:1\nb:1 c:2\nb:1 c:3\n")
        workload_path = tmp_path / "pairs.bin"
        assert main([
            "pack-workload", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(pairs_path), "--output", str(workload_path),
        ]) == 0
        assert "packed 4 pairs" in capsys.readouterr().out
        # 16-byte header, then two little-endian int64 columns per pair
        assert workload_path.stat().st_size == 16 + 4 * 16

        assert main([
            "query-batch", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(pairs_path),
        ]) == 0
        text_output = capsys.readouterr().out
        assert main([
            "query-batch", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(workload_path), "--format", "bin",
        ]) == 0
        bin_output = capsys.readouterr().out
        for line in text_output.splitlines():
            if "reaches" in line and not line.startswith("answered"):
                assert line in bin_output
        assert "answered 4 queries" in bin_output and "2 reachable" in bin_output

    def test_pack_unknown_execution_reports_line(
        self, labeled_database, tmp_path, capsys
    ):
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("a:1 h:1\nz:9 h:1\n")
        exit_code = main([
            "pack-workload", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(pairs_path), "--output", str(tmp_path / "out.bin"),
        ])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "line 2" in err and "'z:9'" in err

    def test_workload_for_another_run_rejected(
        self, labeled_database, tmp_path, capsys
    ):
        # handles only mean something for the run that issued them; the
        # embedded run id must stop a silent cross-run replay
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("a:1 h:1\n")
        workload_path = tmp_path / "pairs.bin"
        assert main([
            "pack-workload", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(pairs_path), "--output", str(workload_path),
        ]) == 0
        capsys.readouterr()
        exit_code = main([
            "query-batch", "--database", str(labeled_database), "--run-id", "2",
            "--pairs", str(workload_path), "--format", "bin",
        ])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "packed against run 1" in err and "not run 2" in err

    def test_headerless_binary_workload_errors(
        self, labeled_database, tmp_path, capsys
    ):
        workload_path = tmp_path / "broken.bin"
        workload_path.write_bytes(b"\x00" * 21)
        exit_code = main([
            "query-batch", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(workload_path), "--format", "bin",
        ])
        assert exit_code == 2
        assert "header" in capsys.readouterr().err

    def test_truncated_binary_workload_errors(
        self, labeled_database, tmp_path, capsys
    ):
        from repro.api.workload import write_pair_workload

        workload_path = tmp_path / "broken.bin"
        write_pair_workload(workload_path, [0, 1], [1, 2], run_id=1)
        workload_path.write_bytes(workload_path.read_bytes()[:-5])
        exit_code = main([
            "query-batch", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(workload_path), "--format", "bin",
        ])
        assert exit_code == 2
        assert "multiple of 16" in capsys.readouterr().err

    def test_out_of_range_handle_errors(self, labeled_database, tmp_path, capsys):
        from repro.api.workload import write_pair_workload

        workload_path = tmp_path / "bad.bin"
        write_pair_workload(workload_path, [0, 10_000], [1, 2], run_id=1)
        exit_code = main([
            "query-batch", "--database", str(labeled_database), "--run-id", "1",
            "--pairs", str(workload_path), "--format", "bin",
        ])
        assert exit_code == 2
        assert "unknown vertex handle" in capsys.readouterr().err


class TestSweep:
    @pytest.fixture()
    def multi_run_database(self, tmp_path, paper_spec, paper_run):
        from repro.skeleton.skl import SkeletonLabeler
        from repro.storage.store import ProvenanceStore
        from repro.workflow.execution import generate_run_with_size

        database = tmp_path / "prov.db"
        labeler = SkeletonLabeler(paper_spec, "tcm")
        with ProvenanceStore(database) as store:
            store.add_labeled_run(labeler.label_run(paper_run))
            for seed in (1, 2):
                generated = generate_run_with_size(
                    paper_spec, 20, seed=seed, name=f"gen-{seed}"
                )
                store.add_labeled_run(labeler.label_run(generated.run))
        return database

    def test_sweep_covers_every_run(self, multi_run_database, capsys):
        exit_code = main([
            "sweep", "--database", str(multi_run_database),
            "--spec", "paper-example", "--source", "a:1",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "run 1 (figure-3)" in output
        assert "run 2 (gen-1)" in output and "run 3 (gen-2)" in output
        assert "swept 3 runs of 'paper-example'" in output

    def test_sweep_upstream_summary(self, multi_run_database, capsys):
        exit_code = main([
            "sweep", "--database", str(multi_run_database),
            "--spec", "paper-example", "--source", "h:1",
            "--direction", "upstream", "--summary-only",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "executions upstream of h:1" in output
        # every other execution of figure-3 feeds h:1
        assert "run 1 (figure-3): 15 executions" in output

    def test_sweep_unknown_spec_errors(self, multi_run_database, capsys):
        exit_code = main([
            "sweep", "--database", str(multi_run_database),
            "--spec", "nope", "--source", "a:1",
        ])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err


class TestVerify:
    def test_verify_conforming_run(self, tmp_path, paper_spec, paper_run, capsys):
        spec_path, run_path = tmp_path / "spec.json", tmp_path / "run.json"
        write_specification(paper_spec, spec_path)
        write_run(paper_run, run_path)
        assert main(["verify", "--spec", str(spec_path), "--run", str(run_path)]) == 0
        output = capsys.readouterr().out
        assert "conforms" in output and "F1" in output

    def test_verify_non_conforming_run(self, tmp_path, paper_spec, paper_run, capsys):
        from repro.workflow.run import WorkflowRun

        spec_path, run_path = tmp_path / "spec.json", tmp_path / "bad-run.json"
        write_specification(paper_spec, spec_path)
        bad = WorkflowRun.from_edges(
            paper_spec,
            [(("a", 1), ("b", 1)), (("b", 1), ("c", 1)), (("c", 1), ("h", 1))],
            name="missing-branch",
        )
        write_run(bad, run_path)
        assert main(["verify", "--spec", str(spec_path), "--run", str(run_path)]) == 1
        assert "does NOT conform" in capsys.readouterr().out


class TestInfoAndExperiments:
    def test_info_catalog(self, capsys):
        assert main(["info", "--catalog", "QBLAST"]) == 0
        output = capsys.readouterr().out
        assert "nG (modules)  : 58" in output
        assert "|TG|          : 6" in output

    def test_info_from_file(self, tmp_path, paper_spec, capsys):
        path = tmp_path / "spec.xml"
        write_specification(paper_spec, path)
        assert main(["info", "--spec", str(path)]) == 0
        assert "paper-example" in capsys.readouterr().out

    def test_experiments_smoke(self, tmp_path, capsys):
        exit_code = main([
            "experiments", "--scale", "smoke", "--seed", "1",
            "--output-dir", str(tmp_path / "reports"),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "figure-12" in output and "table-1" in output
        written = list((tmp_path / "reports").glob("*.txt"))
        # tables 1-2, figures 12-20, spec-scheme ablation, engine throughput,
        # handle-path throughput, cross-run + parallel cross-run throughput,
        # sharded-ingest + shard-rebalance throughput, server throughput,
        # sql-pushdown throughput, incremental-update throughput
        assert len(written) == 21
        # every report also carries a machine-readable BENCH_*.json twin
        assert len(list((tmp_path / "reports").glob("BENCH_*.json"))) == 21
