"""Batch-vs-single consistency of the ProvenanceStore query paths."""

from __future__ import annotations

import random

import pytest

import repro.storage.database as database_module
from repro.exceptions import StorageError
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.store import LABEL_FETCH_CHUNK, ProvenanceStore
from repro.workflow.run import RunVertex

# The module deliberately drives the deprecated store query shims (the
# surface under test); keep the strict-DeprecationWarning CI leg green.
pytestmark = pytest.mark.filterwarnings(
    "ignore:ProvenanceStore:DeprecationWarning"
)


@pytest.fixture()
def store() -> ProvenanceStore:
    with ProvenanceStore(":memory:") as opened:
        yield opened


@pytest.fixture()
def stored_run(store, paper_labeled_run) -> int:
    return store.add_labeled_run(paper_labeled_run)


@pytest.fixture()
def stored_synthetic(store, synthetic_spec, synthetic_run) -> tuple[int, object]:
    labeled = SkeletonLabeler(synthetic_spec, "tcm").label_run(
        synthetic_run.run, plan=synthetic_run.plan, context=synthetic_run.context
    )
    return store.add_labeled_run(labeled), labeled


class _StatementCounter:
    """Counts SQL statements issued on a connection, by substring."""

    def __init__(self, connection) -> None:
        self.statements: list[str] = []
        connection.set_trace_callback(self.statements.append)
        self._connection = connection

    def count(self, substring: str) -> int:
        return sum(1 for statement in self.statements if substring in statement)

    def stop(self) -> None:
        self._connection.set_trace_callback(None)


class TestBatchSingleConsistency:
    def test_reaches_batch_equals_per_pair_api(self, store, stored_synthetic, rng):
        run_id, labeled = stored_synthetic
        vertices = labeled.run.vertices()
        pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(200)]
        single = [store.reaches(run_id, source, target) for source, target in pairs]
        batch = store.reaches_batch(run_id, pairs)
        assert batch == single
        # and both agree with the in-memory labeled run
        assert batch == [labeled.reaches(source, target) for source, target in pairs]

    def test_reaches_batch_accepts_plain_tuples(self, store, stored_run):
        pairs = [(("a", 1), ("h", 1)), (("h", 1), ("a", 1))]
        assert store.reaches_batch(stored_run, pairs) == [True, False]

    def test_labels_of_many_equals_label_of(self, store, stored_run, paper_labeled_run):
        executions = [
            (vertex.module, vertex.instance)
            for vertex in paper_labeled_run.run.vertices()
        ]
        batched = store.labels_of_many(stored_run, executions)
        for module, instance in executions:
            assert batched[(module, instance)] == store.label_of(
                stored_run, module, instance
            )

    def test_labels_of_many_missing_execution_raises(self, store, stored_run):
        with pytest.raises(StorageError):
            store.labels_of_many(stored_run, [("a", 1), ("ghost", 9)])

    def test_all_labels_of_covers_the_run(self, store, stored_run, paper_labeled_run):
        labels = store.all_labels_of(stored_run)
        assert set(labels) == {
            (vertex.module, vertex.instance)
            for vertex in paper_labeled_run.run.vertices()
        }

    def test_all_labels_of_unknown_run_raises(self, store):
        with pytest.raises(StorageError):
            store.all_labels_of(99)

    def test_dependency_sweeps_match_labeled_run(self, store, stored_run, paper_labeled_run):
        for vertex in paper_labeled_run.run.vertices():
            expected_down = {
                (other.module, other.instance)
                for other in paper_labeled_run.downstream_of(vertex)
            }
            expected_up = {
                (other.module, other.instance)
                for other in paper_labeled_run.upstream_of(vertex)
            }
            key = (vertex.module, vertex.instance)
            assert set(store.downstream_of(stored_run, key)) == expected_down
            assert set(store.upstream_of(stored_run, key)) == expected_up

    def test_dependency_sweep_unknown_execution_raises(self, store, stored_run):
        with pytest.raises(StorageError):
            store.downstream_of(stored_run, ("ghost", 1))


class TestSQLRoundTrips:
    def test_batch_fetches_labels_in_one_round_trip(self, store, stored_synthetic, rng):
        run_id, labeled = stored_synthetic
        vertices = labeled.run.vertices()
        pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(150)]
        assert 2 * len(pairs) <= LABEL_FETCH_CHUNK  # fits one chunk by design
        counter = _StatementCounter(store._connection)
        try:
            store.reaches_batch(run_id, pairs)
        finally:
            counter.stop()
        assert counter.count("FROM run_labels") == 1

    def test_per_pair_api_pays_two_selects_per_query(self, store, stored_run):
        counter = _StatementCounter(store._connection)
        try:
            store.reaches(stored_run, ("a", 1), ("h", 1))
        finally:
            counter.stop()
        assert counter.count("FROM run_labels") == 2

    def test_dependency_sweep_is_one_round_trip(self, store, stored_run):
        counter = _StatementCounter(store._connection)
        try:
            store.downstream_of(stored_run, ("a", 1))
        finally:
            counter.stop()
        assert counter.count("FROM run_labels") == 1

    def test_large_query_sets_chunk_and_stay_correct(
        self, store, stored_synthetic, rng, monkeypatch
    ):
        run_id, labeled = stored_synthetic
        # the chunking helper lives in repro.storage.database now
        monkeypatch.setattr(database_module, "LABEL_FETCH_CHUNK", 7)
        vertices = labeled.run.vertices()
        pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(60)]
        distinct = {v for pair in pairs for v in pair}
        counter = _StatementCounter(store._connection)
        try:
            batch = store.reaches_batch(run_id, pairs)
        finally:
            counter.stop()
        assert batch == [labeled.reaches(source, target) for source, target in pairs]
        expected_round_trips = -(-len(distinct) // 7)  # ceil division
        assert counter.count("FROM run_labels") == expected_round_trips


class TestDataDependencyBatching:
    def test_data_depends_on_data_uses_one_label_fetch(
        self, store, stored_run, paper_run
    ):
        from repro.provenance.data import DataFlow

        flow = DataFlow(run=paper_run)
        flow.attach(RunVertex("a", 1), RunVertex("b", 1), ["d-a"])
        flow.attach(RunVertex("b", 1), RunVertex("c", 1), ["d-b"])
        flow.attach(RunVertex("c", 2), RunVertex("h", 1), ["d-h"])
        store.add_dataflow(stored_run, flow)
        counter = _StatementCounter(store._connection)
        try:
            assert store.data_depends_on_data(stored_run, "d-h", "d-a") is True
        finally:
            counter.stop()
        assert counter.count("FROM run_labels") == 1
        assert store.data_depends_on_data(stored_run, "d-a", "d-h") is False
