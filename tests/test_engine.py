"""Tests for the batch query engine (repro.engine)."""

from __future__ import annotations

import random

import pytest

from repro.engine import QueryEngine
from repro.engine.kernels import HAS_NUMPY, build_kernel
from repro.exceptions import LabelingError
from repro.graphs.digraph import DiGraph
from repro.labeling.registry import available_schemes, build_index
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.run import RunVertex


def small_dag() -> DiGraph:
    return DiGraph(
        edges=[
            ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"),
            ("d", "e"), ("c", "f"), ("x", "y"),
        ]
    )


def all_pairs(graph: DiGraph):
    vertices = graph.vertices()
    return [(u, v) for u in vertices for v in vertices]


class TestEngineOverSchemes:
    @pytest.mark.parametrize("scheme", sorted(set(available_schemes()) - {"interval"}))
    def test_batch_matches_single_on_dag(self, scheme):
        graph = small_dag()
        index = build_index(scheme, graph)
        engine = QueryEngine(index)
        pairs = all_pairs(graph)
        expected = [index.reaches(u, v) for u, v in pairs]
        assert engine.reaches_batch(pairs) == expected

    def test_batch_matches_single_on_forest_interval(self):
        forest = DiGraph(edges=[("r", "a"), ("r", "b"), ("a", "c"), ("s", "t")])
        index = build_index("interval", forest)
        engine = QueryEngine(index)
        pairs = all_pairs(forest)
        expected = [index.reaches(u, v) for u, v in pairs]
        assert engine.reaches_batch(pairs) == expected

    def test_batch_matches_single_on_labeled_run(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run)
        vertices = paper_labeled_run.run.vertices()
        pairs = [(u, v) for u in vertices for v in vertices]
        expected = [paper_labeled_run.reaches(u, v) for u, v in pairs]
        assert engine.reaches_batch(pairs) == expected

    @pytest.mark.parametrize("spec_scheme", ["tcm", "bfs", "tree-cover", "chain", "2-hop"])
    def test_batch_matches_single_across_spec_schemes(
        self, synthetic_spec, synthetic_run, spec_scheme, rng
    ):
        labeled = SkeletonLabeler(synthetic_spec, spec_scheme).label_run(synthetic_run.run)
        engine = QueryEngine(labeled)
        vertices = synthetic_run.run.vertices()
        pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(500)]
        expected = [labeled.reaches(u, v) for u, v in pairs]
        assert engine.reaches_batch(pairs) == expected


class TestKernelDispatch:
    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
    def test_numpy_kernels_selected(self, paper_labeled_run):
        graph = small_dag()
        assert QueryEngine(paper_labeled_run).kernel_name == "numpy-skl"
        assert QueryEngine(build_index("tcm", graph)).kernel_name == "numpy-tcm"
        forest = DiGraph(edges=[("r", "a"), ("r", "b")])
        assert QueryEngine(build_index("interval", forest)).kernel_name == "numpy-interval"
        assert QueryEngine(build_index("chain", graph)).kernel_name == "numpy-chain"
        assert (
            QueryEngine(build_index("tree-cover", graph)).kernel_name
            == "numpy-tree-cover"
        )
        assert QueryEngine(build_index("2-hop", graph)).kernel_name == "numpy-2hop"

    def test_generic_kernel_for_traversal(self):
        graph = small_dag()
        assert QueryEngine(build_index("bfs", graph)).kernel_name == "python-generic"
        assert QueryEngine(build_index("dfs", graph)).kernel_name == "python-generic"

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
    def test_skeleton_kernel_fallthrough_without_dense_matrix(
        self, paper_labeled_run, monkeypatch
    ):
        # Past DENSE_SPEC_LIMIT no dense spec matrix is built (for any spec
        # scheme, TCM included) and fall-throughs go through the spec index.
        import repro.engine.kernels as kernels

        monkeypatch.setattr(kernels, "DENSE_SPEC_LIMIT", 2)
        engine = QueryEngine(paper_labeled_run)
        assert engine.kernel_name == "numpy-skl"
        assert engine._kernel._matrix is None
        vertices = paper_labeled_run.run.vertices()
        pairs = [(u, v) for u in vertices for v in vertices]
        expected = [paper_labeled_run.reaches(u, v) for u, v in pairs]
        assert engine.reaches_batch(pairs) == expected

    def test_build_kernel_duck_types(self):
        class FakeIndex:
            def label_of(self, vertex):
                return vertex

            def reaches_labels(self, a, b):
                return a <= b

            def reaches(self, a, b):
                return self.reaches_labels(a, b)

        kernel = build_kernel(FakeIndex())
        assert kernel.name == "python-generic"
        assert kernel.batch([(1, 2), (3, 1)]) == [True, False]


class TestBatchSemantics:
    def test_empty_batch(self, paper_labeled_run):
        assert QueryEngine(paper_labeled_run).reaches_batch([]) == []

    def test_duplicate_pairs_answered_consistently(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run)
        a = RunVertex("a", 1)
        h = RunVertex("h", 1)
        answers = engine.reaches_batch([(a, h), (a, h), (h, a), (a, h)])
        assert answers == [True, True, False, True]

    def test_unknown_vertex_raises_labeling_error(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run)
        ghost = RunVertex("ghost", 1)
        real = RunVertex("a", 1)
        with pytest.raises(LabelingError):
            engine.reaches_batch([(real, ghost)])
        with pytest.raises(LabelingError):
            engine.reaches(ghost, real)

    def test_reaches_pairs_zips(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run)
        sources = [RunVertex("a", 1), RunVertex("h", 1)]
        targets = [RunVertex("h", 1), RunVertex("a", 1)]
        assert engine.reaches_pairs(sources, targets) == [True, False]

    def test_generator_input_accepted(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run)
        vertices = paper_labeled_run.run.vertices()
        generator = ((u, v) for u in vertices[:4] for v in vertices[:4])
        expected = [
            paper_labeled_run.reaches(u, v) for u in vertices[:4] for v in vertices[:4]
        ]
        assert engine.reaches_batch(generator) == expected


class TestHotPairCache:
    def test_point_queries_hit_cache(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run)
        a, h = RunVertex("a", 1), RunVertex("h", 1)
        assert engine.reaches(a, h) is True
        assert engine.reaches(a, h) is True
        assert engine.stats.queries == 2
        assert engine.stats.cache_hits == 1
        assert engine.stats.cache_hit_rate == 0.5

    def test_cache_bounded_by_capacity(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run, cache_size=4)
        vertices = paper_labeled_run.run.vertices()
        rng = random.Random(3)
        for _ in range(50):
            engine.reaches(rng.choice(vertices), rng.choice(vertices))
        assert len(engine._pair_cache) <= 4

    def test_cache_disabled(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run, cache_size=0)
        a, h = RunVertex("a", 1), RunVertex("h", 1)
        assert engine.reaches(a, h) is True
        assert engine.reaches(a, h) is True
        assert engine.stats.cache_hits == 0
        assert len(engine._pair_cache) == 0

    def test_negative_cache_size_rejected(self, paper_labeled_run):
        with pytest.raises(ValueError):
            QueryEngine(paper_labeled_run, cache_size=-1)

    def test_unstable_spec_index_is_never_snapshotted(self):
        # A bfs-backed spec index answers from the live specification graph;
        # that instability must propagate through SkeletonLabeledRun so the
        # engine neither pair-caches nor freezes spec reachability.
        from conftest import make_paper_run, make_paper_specification

        spec = make_paper_specification()
        run = make_paper_run(spec)
        labeled = SkeletonLabeler(spec, "bfs").label_run(run)
        assert labeled.stable_labels is False
        engine = QueryEngine(labeled)
        assert engine.cache_size == 0
        vertices = run.vertices()
        pairs = [(u, v) for u in vertices for v in vertices]
        assert engine.reaches_batch(pairs) == [
            labeled.reaches(u, v) for u, v in pairs
        ]
        if HAS_NUMPY:
            assert engine._kernel._matrix is None
        # after a spec mutation, batch and per-pair must still agree
        spec.graph.add_edge("c", "d")
        assert engine.reaches_batch(pairs) == [
            labeled.reaches(u, v) for u, v in pairs
        ]

    def test_unstable_index_labels_not_cached_across_batches(self):
        # An index that declares stable_labels = False (e.g. OnlineRun, whose
        # coordinates shift as copies arrive) must be re-resolved every batch.
        class MutableLabelIndex:
            stable_labels = False

            def __init__(self):
                self.labels = {"a": 1, "b": 2}

            def label_of(self, vertex):
                return self.labels[vertex]

            def reaches_labels(self, first, second):
                return first <= second

            def reaches(self, source, target):
                return self.reaches_labels(self.label_of(source), self.label_of(target))

        index = MutableLabelIndex()
        engine = QueryEngine(index)
        assert engine.cache_size == 0
        assert engine.reaches_batch([("b", "a")]) == [False]
        index.labels["b"] = 0  # labels shifted, like an online re-encoding
        assert engine.reaches_batch([("b", "a")]) == [True]
        assert engine.reaches("b", "a") is True

    def test_online_run_declares_unstable_labels(self):
        from repro.skeleton.online import OnlineRun

        assert OnlineRun.stable_labels is False

    def test_kernel_is_compiled_lazily(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run)
        assert engine._compiled_kernel is None
        engine.reaches(RunVertex("a", 1), RunVertex("h", 1))  # point path only
        assert engine._compiled_kernel is None
        engine.reaches_batch([(RunVertex("a", 1), RunVertex("h", 1))])
        assert engine._compiled_kernel is not None

    def test_live_traversal_indexes_are_never_memoized(self):
        # Traversal schemes answer from the live graph (stable_labels is
        # False), so the engine must keep point and batch queries in
        # agreement across graph mutations by not caching their answers.
        graph = DiGraph(edges=[("a", "b"), ("c", "d")])
        index = build_index("bfs", graph)
        engine = QueryEngine(index)
        assert engine.cache_size == 0
        assert engine.reaches("b", "c") is False
        assert engine.reaches_batch([("b", "c")]) == [False]
        graph.add_edge("b", "c")
        assert engine.reaches("b", "c") is True
        assert engine.reaches_batch([("b", "c")]) == [True]

    def test_clear_cache_and_stats_reset(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run)
        a, h = RunVertex("a", 1), RunVertex("h", 1)
        engine.reaches(a, h)
        engine.reaches_batch([(a, h)])
        assert engine.stats.queries == 2
        assert engine.stats.batches == 1
        engine.clear_cache()
        assert len(engine._pair_cache) == 0
        engine.stats.reset()
        assert engine.stats.queries == 0
        assert engine.stats.cache_hit_rate == 0.0

    def test_lru_evicts_least_recently_used(self, paper_labeled_run):
        engine = QueryEngine(paper_labeled_run, cache_size=2)
        vertices = paper_labeled_run.run.vertices()
        first, second, third = vertices[0], vertices[1], vertices[2]
        engine.reaches(first, second)   # cache: (f, s)
        engine.reaches(second, third)   # cache: (f, s), (s, t)
        engine.reaches(first, second)   # touch (f, s) -> (s, t) is now LRU
        engine.reaches(third, first)    # evicts (s, t)
        assert (first, second) in engine._pair_cache
        assert (second, third) not in engine._pair_cache
