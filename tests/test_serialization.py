"""Unit tests for XML / JSON serialization of specifications and runs."""

from __future__ import annotations

import pytest

from repro.exceptions import SerializationError
from repro.workflow.serialization import (
    read_run,
    read_specification,
    run_from_json,
    run_from_xml,
    run_to_json,
    run_to_xml,
    specification_from_json,
    specification_from_xml,
    specification_to_json,
    specification_to_xml,
    write_run,
    write_specification,
)


class TestSpecificationXML:
    def test_round_trip(self, paper_spec):
        document = specification_to_xml(paper_spec)
        rebuilt = specification_from_xml(document)
        assert rebuilt.name == paper_spec.name
        assert rebuilt.graph == paper_spec.graph
        assert set(rebuilt.regions) == set(paper_spec.regions)

    def test_round_trip_preserves_hierarchy(self, paper_spec):
        rebuilt = specification_from_xml(specification_to_xml(paper_spec))
        assert rebuilt.hierarchy.size == paper_spec.hierarchy.size
        assert rebuilt.hierarchy.depth == paper_spec.hierarchy.depth

    def test_invalid_xml_rejected(self):
        with pytest.raises(SerializationError):
            specification_from_xml("<not-closed")

    def test_wrong_root_tag_rejected(self):
        with pytest.raises(SerializationError):
            specification_from_xml("<run></run>")

    def test_unknown_region_kind_rejected(self, paper_spec):
        document = specification_to_xml(paper_spec).replace("<fork ", "<swirl ")
        with pytest.raises(SerializationError):
            specification_from_xml(document)


class TestSpecificationJSON:
    def test_round_trip(self, paper_spec):
        rebuilt = specification_from_json(specification_to_json(paper_spec))
        assert rebuilt.graph == paper_spec.graph
        assert {r.name for r in rebuilt.forks} == {"F1", "F2"}

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            specification_from_json("{not json")

    def test_missing_graph_rejected(self):
        with pytest.raises(SerializationError):
            specification_from_json('{"name": "x"}')


class TestRunXML:
    def test_round_trip(self, paper_spec, paper_run):
        rebuilt = run_from_xml(run_to_xml(paper_run), paper_spec)
        assert rebuilt.vertex_count == paper_run.vertex_count
        assert rebuilt.edge_count == paper_run.edge_count
        assert set(rebuilt.graph.iter_edges()) == set(paper_run.graph.iter_edges())

    def test_invalid_run_xml(self, paper_spec):
        with pytest.raises(SerializationError):
            run_from_xml("<oops/>", paper_spec)

    def test_missing_attributes_rejected(self, paper_spec):
        document = "<run><executions><execution module='a'/></executions></run>"
        with pytest.raises(SerializationError):
            run_from_xml(document, paper_spec)


class TestRunJSON:
    def test_round_trip(self, paper_spec, paper_run):
        rebuilt = run_from_json(run_to_json(paper_run), paper_spec)
        assert rebuilt.name == paper_run.name
        assert set(rebuilt.graph.iter_edges()) == set(paper_run.graph.iter_edges())

    def test_invalid_json_rejected(self, paper_spec):
        with pytest.raises(SerializationError):
            run_from_json("]", paper_spec)

    def test_malformed_payload_rejected(self, paper_spec):
        with pytest.raises(SerializationError):
            run_from_json('{"vertices": [["a", "xx"]], "edges": []}', paper_spec)


class TestFileHelpers:
    def test_specification_file_round_trip_xml(self, paper_spec, tmp_path):
        path = tmp_path / "spec.xml"
        write_specification(paper_spec, path)
        assert read_specification(path).graph == paper_spec.graph

    def test_specification_file_round_trip_json(self, paper_spec, tmp_path):
        path = tmp_path / "spec.json"
        write_specification(paper_spec, path)
        assert read_specification(path).graph == paper_spec.graph

    def test_run_file_round_trip_xml(self, paper_spec, paper_run, tmp_path):
        path = tmp_path / "run.xml"
        write_run(paper_run, path)
        rebuilt = read_run(path, paper_spec)
        assert rebuilt.vertex_count == paper_run.vertex_count

    def test_run_file_round_trip_json(self, paper_spec, paper_run, tmp_path):
        path = tmp_path / "run.json"
        write_run(paper_run, path)
        rebuilt = read_run(path, paper_spec)
        assert rebuilt.edge_count == paper_run.edge_count

    def test_unknown_extension_rejected(self, paper_spec, tmp_path):
        with pytest.raises(SerializationError):
            write_specification(paper_spec, tmp_path / "spec.yaml")

    def test_generated_run_round_trip(self, synthetic_spec, synthetic_run, tmp_path):
        path = tmp_path / "generated.json"
        write_run(synthetic_run.run, path)
        rebuilt = read_run(path, synthetic_spec)
        assert rebuilt.vertex_count == synthetic_run.run.vertex_count
