"""The example scripts must run end to end without errors."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "paper_running_example.py",
    "data_provenance_queries.py",
    "provenance_store.py",
    "sharded_store.py",
    "online_labeling.py",
    "batch_queries.py",
    "server_quickstart.py",
    "dynamic_monitoring.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_scheme_comparison_example_smoke(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["scheme_comparison.py", "--scale", "smoke"])
    runpy.run_path(str(EXAMPLES_DIR / "scheme_comparison.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "figure-15" in output and "figure-17" in output


def test_quickstart_reports_expected_answers(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "not reachable (decided by the fork rule)" in output
    assert "reachable (decided by the loop rule)" in output
