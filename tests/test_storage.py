"""Tests for the SQLite provenance store."""

from __future__ import annotations

import pytest

from repro.exceptions import StorageError
from repro.provenance.data import DataFlow
from repro.skeleton.labels import RunLabel
from repro.storage.store import ProvenanceStore
from repro.workflow.run import RunVertex


@pytest.fixture()
def store() -> ProvenanceStore:
    with ProvenanceStore(":memory:") as opened:
        yield opened


@pytest.fixture()
def stored_run(store, paper_labeled_run) -> int:
    return store.add_labeled_run(paper_labeled_run)


class TestSpecificationPersistence:
    def test_add_and_get(self, store, paper_spec):
        spec_id = store.add_specification(paper_spec)
        assert spec_id >= 1
        loaded = store.get_specification("paper-example")
        assert loaded.graph == paper_spec.graph
        assert set(loaded.regions) == set(paper_spec.regions)

    def test_add_is_idempotent_by_name(self, store, paper_spec):
        first = store.add_specification(paper_spec)
        second = store.add_specification(paper_spec)
        assert first == second
        assert len(store.list_specifications()) == 1

    def test_missing_specification_raises(self, store):
        with pytest.raises(StorageError):
            store.get_specification("ghost")

    def test_list_specifications_summary(self, store, paper_spec, synthetic_spec):
        store.add_specification(paper_spec)
        store.add_specification(synthetic_spec)
        summaries = store.list_specifications()
        assert {s["name"] for s in summaries} == {"paper-example", "synthetic-60"}
        assert all("n_modules" in s for s in summaries)


class TestRunPersistence:
    def test_add_labeled_run(self, store, paper_labeled_run, stored_run):
        assert stored_run >= 1
        stats = store.statistics()
        assert stats["runs"] == 1
        assert stats["run_labels"] == paper_labeled_run.run.vertex_count

    def test_duplicate_run_name_rejected(self, store, paper_labeled_run, stored_run):
        with pytest.raises(StorageError):
            store.add_labeled_run(paper_labeled_run)

    def test_get_run_round_trip(self, store, paper_run, stored_run):
        loaded = store.get_run(stored_run)
        assert loaded.vertex_count == paper_run.vertex_count
        assert set(loaded.graph.iter_edges()) == set(paper_run.graph.iter_edges())

    def test_get_missing_run_raises(self, store):
        with pytest.raises(StorageError):
            store.get_run(999)

    def test_list_runs(self, store, stored_run):
        runs = store.list_runs()
        assert len(runs) == 1
        assert runs[0]["spec_scheme"] == "tcm"
        assert store.list_runs(specification="paper-example")[0]["run_id"] == stored_run
        assert store.list_runs(specification="other") == []

    def test_delete_run(self, store, stored_run):
        store.delete_run(stored_run)
        assert store.list_runs() == []
        assert store.statistics()["run_labels"] == 0
        with pytest.raises(StorageError):
            store.delete_run(stored_run)


@pytest.mark.filterwarnings("ignore:ProvenanceStore:DeprecationWarning")
class TestStoredLabels:
    def test_label_round_trip(self, store, paper_labeled_run, stored_run):
        label = store.label_of(stored_run, "b", 2)
        original = paper_labeled_run.label_of(RunVertex("b", 2))
        assert isinstance(label, RunLabel)
        assert label.context == original.context

    def test_missing_label_raises(self, store, stored_run):
        with pytest.raises(StorageError):
            store.label_of(stored_run, "b", 99)

    def test_reaches_matches_in_memory_answers(self, store, paper_labeled_run, stored_run):
        run = paper_labeled_run.run
        for source in run.vertices():
            for target in run.vertices():
                assert store.reaches(stored_run, source, target) == paper_labeled_run.reaches(
                    source, target
                )

    def test_reaches_accepts_tuples(self, store, stored_run):
        assert store.reaches(stored_run, ("a", 1), ("h", 1))
        assert not store.reaches(stored_run, ("h", 1), ("a", 1))

    def test_bfs_scheme_round_trip(self, store, paper_spec, paper_run):
        from repro.skeleton.skl import SkeletonLabeler

        labeled = SkeletonLabeler(paper_spec, "bfs").label_run(paper_run)
        run_id = store.add_labeled_run(labeled)
        assert store.reaches(run_id, ("b", 1), ("c", 2))
        assert not store.reaches(run_id, ("b", 1), ("c", 3))


class TestStoredDataProvenance:
    def test_add_dataflow_and_query(self, store, paper_run, stored_run):
        flow = DataFlow(run=paper_run)
        flow.attach(RunVertex("a", 1), RunVertex("b", 1), ["x1", "x2"])
        flow.attach(RunVertex("a", 1), RunVertex("b", 3), ["x1", "x3"])
        flow.attach(RunVertex("c", 3), RunVertex("h", 1), ["x6"])
        count = store.add_dataflow(stored_run, flow)
        assert count == 4
        assert store.list_data_items(stored_run) == ["x1", "x2", "x3", "x6"]
        assert store.data_depends_on_data(stored_run, "x6", "x1")
        assert not store.data_depends_on_data(stored_run, "x6", "x2")
        assert store.data_depends_on_module(stored_run, "x6", ("b", 3))
        assert not store.data_depends_on_module(stored_run, "x6", ("b", 1))

    def test_dataflow_for_missing_run_rejected(self, store, paper_run):
        flow = DataFlow(run=paper_run)
        with pytest.raises(StorageError):
            store.add_dataflow(42, flow)

    def test_unknown_data_item_raises(self, store, stored_run):
        with pytest.raises(StorageError):
            store.data_depends_on_data(stored_run, "nope", "nope2")


class TestClosedStore:
    def test_close_is_idempotent(self, tmp_path):
        store = ProvenanceStore(tmp_path / "close.db")
        assert not store.closed
        store.close()
        store.close()
        assert store.closed

    def test_context_manager_exit_then_close(self, tmp_path):
        with ProvenanceStore(tmp_path / "ctx.db") as store:
            pass
        store.close()  # a second close after __exit__ is a no-op
        assert store.closed

    def test_operations_after_close_raise_cleanly(self, tmp_path, paper_labeled_run):
        store = ProvenanceStore(tmp_path / "ops.db")
        run_id = store.add_labeled_run(paper_labeled_run)
        store.close()
        for operation in (
            lambda: store.add_labeled_run(paper_labeled_run),
            lambda: store.list_runs(),
            lambda: store.list_specifications(),
            lambda: store.statistics(),
            lambda: store.session(),
            lambda: store.label_of(run_id, "a", 1),
            lambda: store.delete_run(run_id),
        ):
            with pytest.raises(StorageError, match="store is closed"):
                operation()

    def test_deprecated_shim_warns_at_the_callers_line(self, store, stored_run):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            store.reaches(stored_run, ("a", 1), ("h", 1))
        shims = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(shims) == 1
        # the warning must point at THIS file, not at the shim internals,
        # so `-W error::DeprecationWarning` reports the user's own line
        assert shims[0].filename == __file__


@pytest.mark.filterwarnings("ignore:ProvenanceStore:DeprecationWarning")
class TestFileBackedStore:
    def test_persistence_across_connections(self, tmp_path, paper_labeled_run):
        path = tmp_path / "provenance.db"
        with ProvenanceStore(path) as store:
            run_id = store.add_labeled_run(paper_labeled_run)
        with ProvenanceStore(path) as reopened:
            assert reopened.reaches(run_id, ("a", 1), ("h", 1))
            assert reopened.list_runs()[0]["name"] == "figure-3"

    def test_statistics_shape(self, tmp_path):
        with ProvenanceStore(tmp_path / "empty.db") as store:
            stats = store.statistics()
        assert stats == {
            "specifications": 0,
            "runs": 0,
            "run_labels": 0,
            "data_items": 0,
            "data_consumers": 0,
        }
