"""Property-based equivalence of the session API with the object paths.

For every specification scheme, a :class:`~repro.api.ProvenanceSession`
over a labeled run must agree with the object-path API and with the
``transitive_closure`` oracle on random specifications and runs; a
store-backed session must agree run-for-run, including
:class:`~repro.api.CrossRunQuery` sweeps over several stored runs; and a
session over an :class:`~repro.skeleton.online.OnlineRun` must keep
agreeing with the per-pair path across appends (the plan-invalidation
path).
"""

from __future__ import annotations

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.api import (
    BatchQuery,
    CrossRunQuery,
    DownstreamQuery,
    PointQuery,
    ProvenanceSession,
    UpstreamQuery,
)
from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.exceptions import DatasetError
from repro.graphs.transitive_closure import transitive_closure
from repro.skeleton.online import OnlineRun
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

FEW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: specification schemes exercised under the skeleton labeler (a stable
#: matrix-backed one, a traversal one, and the flattened-kernel families)
SPEC_SCHEMES = ("tcm", "bfs", "tree-cover", "chain", "2-hop")


@st.composite
def specification_and_run(draw):
    """Random well-nested specification plus a generated conforming run."""
    hierarchy_size = draw(st.integers(min_value=1, max_value=5))
    if hierarchy_size == 1:
        depth = 1
    else:
        depth = draw(st.integers(min_value=2, max_value=min(3, hierarchy_size)))
    n_modules = draw(st.integers(min_value=10, max_value=25))
    extra_edges = draw(st.integers(min_value=0, max_value=n_modules // 2))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    config = SyntheticSpecConfig(
        n_modules=n_modules,
        n_edges=n_modules - 1 + extra_edges,
        hierarchy_size=hierarchy_size,
        hierarchy_depth=depth,
        seed=seed,
        name=f"api-hypo-{seed}",
    )
    try:
        spec = generate_specification(config)
    except DatasetError:
        assume(False)
    if spec.hierarchy.size == 1:
        target = spec.vertex_count
    else:
        target = draw(
            st.integers(min_value=spec.vertex_count, max_value=3 * spec.vertex_count)
        )
    run_seed = draw(st.integers(min_value=0, max_value=10_000))
    return spec, generate_run_with_size(spec, target, seed=run_seed)


@given(specification_and_run(), st.sampled_from(SPEC_SCHEMES))
@SLOW
def test_index_session_matches_object_path_and_oracle(spec_and_run, scheme):
    spec, generated = spec_and_run
    labeled = SkeletonLabeler(spec, scheme).label_run(generated.run)
    session = ProvenanceSession.for_index(labeled)
    closure = transitive_closure(generated.run.graph)
    vertices = generated.run.vertices()[:12]
    pairs = [(u, v) for u in vertices for v in vertices]
    batch = session.run(BatchQuery(pairs=pairs))
    fused = session.run_many([PointQuery(u, v) for u, v in pairs])
    for (u, v), from_batch, from_fused in zip(pairs, batch, fused):
        expected = closure.reaches(u, v)
        assert bool(from_batch) == expected
        assert from_fused == expected
        assert labeled.reaches(u, v) == expected
    anchor = vertices[0]
    down = session.run(DownstreamQuery(anchor))
    up = session.run(UpstreamQuery(anchor))
    all_vertices = generated.run.vertices()
    assert sorted(down) == sorted(
        v for v in all_vertices if v != anchor and closure.reaches(anchor, v)
    )
    assert sorted(up) == sorted(
        v for v in all_vertices if v != anchor and closure.reaches(v, anchor)
    )


@given(specification_and_run(), st.sampled_from(("tcm", "tree-cover", "bfs")))
@FEW
def test_store_session_and_cross_run_match_oracle(spec_and_run, scheme):
    spec, generated = spec_and_run
    labeler = SkeletonLabeler(spec, scheme)
    with ProvenanceStore() as store:
        runs = {}
        run_ids = []
        for seed in range(3):
            extra = generate_run_with_size(
                spec, generated.run.vertex_count, seed=seed, name=f"hypo-run-{seed}"
            ).run
            run_id = store.add_labeled_run(labeler.label_run(extra))
            runs[run_id] = extra
            run_ids.append(run_id)
        session = store.session()

        # batch answers against the oracle, per stored run
        for run_id, run in runs.items():
            closure = transitive_closure(run.graph)
            vertices = run.vertices()[:8]
            pairs = [(u, v) for u in vertices for v in vertices]
            batch = session.run(BatchQuery(pairs=pairs, run_id=run_id))
            for (u, v), answer in zip(pairs, batch):
                assert bool(answer) == closure.reaches(u, v)

        # the cross-run sweep equals one oracle sweep per run
        anchor_vertex = runs[run_ids[0]].vertices()[0]
        anchor = (anchor_vertex.module, anchor_vertex.instance)
        result = session.run(CrossRunQuery(spec.name, anchor, "downstream"))
        assert set(result.per_run) | set(result.skipped_runs) == set(run_ids)
        for run_id, affected in result.per_run.items():
            closure = transitive_closure(runs[run_id].graph)
            expected = [
                (v.module, v.instance)
                for v in runs[run_id].vertices()
                if v != anchor_vertex and closure.reaches(anchor_vertex, v)
            ]
            assert sorted(affected) == sorted(expected)
        for run_id in result.skipped_runs:
            assert anchor_vertex not in runs[run_id].vertices()


def _paper_specification():
    from repro.workflow.specification import WorkflowSpecification

    return WorkflowSpecification.from_edges(
        edges=[
            ("a", "b"), ("b", "c"), ("c", "h"),
            ("a", "d"), ("d", "e"), ("e", "f"), ("f", "g"), ("g", "h"),
        ],
        forks=[("F1", {"b", "c"}), ("F2", {"f"})],
        loops=[("L1", {"e", "f", "g"}), ("L2", {"b", "c"})],
        name="paper-example",
    )


@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
)
@SLOW
def test_online_session_stays_correct_across_appends(
    fork_copies, loop_iterations, l1_iterations
):
    """Queries interleaved with appends agree with the per-pair path.

    Each batch of events (new executions, new fork/loop copies) moves the
    online run's version token, so the session must re-compile its engine
    before the next query — answered through stale handles, the grown run
    would raise or mis-answer.  After every append burst the session's
    batch answers are compared against the per-pair path, and at the end
    against an independent labeled snapshot.
    """
    online = OnlineRun(
        SkeletonLabeler(_paper_specification(), "tcm"), name="hypo-online"
    )
    session = ProvenanceSession.for_online(online)
    recorded = []

    def check():
        vertices = recorded[-10:]
        pairs = [(u, v) for u in vertices for v in vertices]
        batch = session.run(BatchQuery(pairs=pairs))
        for (u, v), answer in zip(pairs, batch):
            assert bool(answer) == online.reaches(u, v)

    root = online.root_scope
    recorded.append(root.execute("a"))
    recorded.append(root.execute("d"))
    check()

    fork = root.begin_execution("F1")
    for _ in range(fork_copies):
        copy = fork.new_copy()
        loop = copy.begin_execution("L2")
        for _ in range(loop_iterations):
            iteration = loop.new_copy()
            recorded.append(iteration.execute("b"))
            recorded.append(iteration.execute("c"))
        check()  # the plan grew: the session must have re-interned

    l1 = root.begin_execution("L1")
    for _ in range(l1_iterations):
        iteration = l1.new_copy()
        recorded.append(iteration.execute("e"))
        inner_fork = iteration.begin_execution("F2")
        recorded.append(inner_fork.new_copy().execute("f"))
        recorded.append(iteration.execute("g"))
        check()

    recorded.append(root.execute("h"))
    check()

    # final agreement with an independent labeled snapshot over every pair
    snapshot = online.snapshot()
    pairs = [(u, v) for u in recorded for v in recorded]
    batch = session.run(BatchQuery(pairs=pairs))
    for (u, v), answer in zip(pairs, batch):
        assert bool(answer) == snapshot.reaches(u, v)


@given(
    specification_and_run(),
    st.sampled_from(("tcm", "tree-cover", "bfs")),
    st.sampled_from(("thread", "process")),
)
@FEW
def test_parallel_cross_run_is_bit_identical_to_sequential(
    spec_and_run, scheme, mode
):
    """Parallel execution must answer exactly what the sequential path does.

    Every pool mode evaluates the same compiled-kernel formula over the
    same streamed label arrays, so on random specifications, runs and
    schemes the parallel sweep and batch must be **bit-identical** to the
    retained sequential PR 3 path (which in turn is oracle-checked above).
    """
    import tempfile
    from pathlib import Path

    from repro.engine.parallel import CrossRunExecutor

    spec, generated = spec_and_run
    labeler = SkeletonLabeler(spec, scheme)
    database = Path(tempfile.mkdtemp(prefix="repro-hypo-parallel-")) / "prov.db"
    with ProvenanceStore(database) as store:
        runs = {}
        for seed in range(4):
            extra = generate_run_with_size(
                spec, generated.run.vertex_count, seed=seed, name=f"par-{seed}"
            ).run
            runs[store.add_labeled_run(labeler.label_run(extra))] = extra

        first = next(iter(runs.values()))
        anchor_vertex = first.vertices()[0]
        anchor = (anchor_vertex.module, anchor_vertex.instance)
        vertices = first.vertices()[:6]
        pairs = [
            ((u.module, u.instance), (v.module, v.instance))
            for u in vertices
            for v in vertices
        ]

        sequential = CrossRunExecutor(store, workers=1, mode=mode)
        parallel = CrossRunExecutor(store, workers=3, mode=mode)
        for direction in ("downstream", "upstream"):
            assert parallel.sweep(spec.name, anchor, direction) == sequential.sweep(
                spec.name, anchor, direction
            )
        assert parallel.batch(spec.name, pairs) == sequential.batch(
            spec.name, pairs
        )
