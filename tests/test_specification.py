"""Unit tests for WorkflowSpecification validation and accessors."""

from __future__ import annotations

import pytest

from repro.exceptions import SpecificationError, WellNestednessError
from repro.graphs.digraph import DiGraph
from repro.workflow.specification import WorkflowSpecification
from repro.workflow.subgraphs import Region, RegionKind


class TestConstruction:
    def test_paper_spec_dimensions(self, paper_spec):
        assert paper_spec.vertex_count == 8
        assert paper_spec.edge_count == 8
        assert paper_spec.source == "a"
        assert paper_spec.sink == "h"

    def test_regions_resolved(self, paper_spec):
        assert set(paper_spec.regions) == {"F1", "F2", "L1", "L2"}
        assert {r.name for r in paper_spec.forks} == {"F1", "F2"}
        assert {r.name for r in paper_spec.loops} == {"L1", "L2"}

    def test_region_lookup(self, paper_spec):
        region = paper_spec.region("F1")
        assert region.source == "a" and region.sink == "h"

    def test_region_lookup_unknown(self, paper_spec):
        with pytest.raises(SpecificationError):
            paper_spec.region("F99")

    def test_modules_and_has_module(self, paper_spec):
        assert set(paper_spec.modules) == {"a", "b", "c", "d", "e", "f", "g", "h"}
        assert paper_spec.has_module("a")
        assert not paper_spec.has_module("zzz")

    def test_graph_is_copied(self, paper_spec):
        graph = DiGraph(edges=[("s", "x"), ("x", "t")])
        spec = WorkflowSpecification(graph, name="copy-test")
        graph.add_edge("s", "t")
        assert spec.edge_count == 2

    def test_spec_without_regions(self):
        spec = WorkflowSpecification.from_edges([("s", "x"), ("x", "t")], name="plain")
        assert spec.forks == [] and spec.loops == []
        assert spec.hierarchy.size == 1
        assert spec.hierarchy.depth == 1

    def test_from_edges_round_trip_dict(self, paper_spec):
        payload = paper_spec.to_dict()
        assert payload["name"] == "paper-example"
        assert {f["name"] for f in payload["forks"]} == {"F1", "F2"}
        assert {l["name"] for l in payload["loops"]} == {"L1", "L2"}

    def test_repr_mentions_counts(self, paper_spec):
        text = repr(paper_spec)
        assert "nG=8" in text and "mG=8" in text


class TestValidationErrors:
    def test_not_a_flow_network(self):
        graph = DiGraph(edges=[("s1", "t"), ("s2", "t")])
        with pytest.raises(SpecificationError):
            WorkflowSpecification(graph)

    def test_duplicate_region_names(self):
        graph = DiGraph(edges=[("s", "x"), ("x", "y"), ("y", "t")])
        forks = [Region(RegionKind.FORK, "R", {"x"})]
        loops = [Region(RegionKind.LOOP, "R", {"x", "y"})]
        with pytest.raises(SpecificationError):
            WorkflowSpecification(graph, forks, loops)

    def test_fork_passed_as_loop(self):
        graph = DiGraph(edges=[("s", "x"), ("x", "t")])
        with pytest.raises(SpecificationError):
            WorkflowSpecification(graph, forks=[Region(RegionKind.LOOP, "L", {"x"})])

    def test_loop_passed_as_fork(self):
        graph = DiGraph(edges=[("s", "x"), ("x", "t")])
        with pytest.raises(SpecificationError):
            WorkflowSpecification(graph, loops=[Region(RegionKind.FORK, "F", {"x"})])

    def test_overlapping_regions_rejected(self):
        # two loops sharing one edge but neither containing the other
        graph = DiGraph(
            edges=[("s", "x"), ("x", "y"), ("y", "z"), ("z", "t")]
        )
        loops = [
            Region(RegionKind.LOOP, "L1", {"x", "y"}),
            Region(RegionKind.LOOP, "L2", {"y", "z"}),
        ]
        with pytest.raises(WellNestednessError):
            WorkflowSpecification(graph, loops=loops)

    def test_invalid_fork_rejected(self):
        graph = DiGraph(edges=[("s", "x"), ("s", "y"), ("x", "t"), ("y", "t")])
        with pytest.raises(SpecificationError):
            WorkflowSpecification(graph, forks=[Region(RegionKind.FORK, "F", {"x", "y"})])

    def test_identical_fork_and_loop_edge_sets_with_identical_domsets_rejected(self):
        # a loop over {x, y} and another loop over {x, y} under different names
        graph = DiGraph(edges=[("s", "x"), ("x", "y"), ("y", "t")])
        loops = [
            Region(RegionKind.LOOP, "L1", {"x", "y"}),
            Region(RegionKind.LOOP, "L2", {"x", "y"}),
        ]
        with pytest.raises(WellNestednessError):
            WorkflowSpecification(graph, loops=loops)


class TestWellNestedBoundaryCases:
    def test_fork_filling_whole_loop_branch_is_accepted(self):
        """The paper's F2-inside-L1 situation: equal edge sets, nested dom sets."""
        graph = DiGraph(edges=[("s", "e"), ("e", "f"), ("f", "g"), ("g", "t")])
        spec = WorkflowSpecification(
            graph,
            forks=[Region(RegionKind.FORK, "F", {"f"})],
            loops=[Region(RegionKind.LOOP, "L", {"e", "f", "g"})],
        )
        hierarchy = spec.hierarchy
        assert hierarchy.node("F").parent == "L"

    def test_nested_loops_accepted(self):
        graph = DiGraph(edges=[("s", "w"), ("w", "x"), ("x", "y"), ("y", "z"), ("z", "t")])
        spec = WorkflowSpecification(
            graph,
            loops=[
                Region(RegionKind.LOOP, "outer", {"w", "x", "y", "z"}),
                Region(RegionKind.LOOP, "inner", {"x", "y"}),
            ],
        )
        assert spec.hierarchy.node("inner").parent == "outer"

    def test_sibling_regions_accepted(self, paper_spec):
        hierarchy = paper_spec.hierarchy
        assert hierarchy.node("F1").parent == "__root__"
        assert hierarchy.node("L1").parent == "__root__"

    def test_shared_fork_terminals_accepted(self):
        """Two edge-disjoint forks sharing their source and sink."""
        graph = DiGraph(edges=[("s", "x"), ("x", "t"), ("s", "y"), ("y", "t")])
        spec = WorkflowSpecification(
            graph,
            forks=[
                Region(RegionKind.FORK, "F1", {"x"}),
                Region(RegionKind.FORK, "F2", {"y"}),
            ],
        )
        assert spec.region("F1").source == "s"
        assert spec.region("F2").source == "s"
