"""Unit tests for traversal utilities (reachability, components, topo sort)."""

from __future__ import annotations

import pytest

from repro.exceptions import NotADagError, VertexNotFoundError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import (
    all_pairs_reachability,
    ancestors,
    bfs_reachable,
    descendants,
    dfs_reachable,
    is_dag,
    is_reachable,
    is_weakly_connected,
    simple_paths_exist_matrix,
    topological_sort,
    weakly_connected_components,
)


@pytest.fixture()
def chain() -> DiGraph:
    return DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "d")])


@pytest.fixture()
def two_components() -> DiGraph:
    return DiGraph(edges=[("a", "b"), ("x", "y")])


@pytest.fixture()
def cyclic() -> DiGraph:
    return DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "a")])


class TestReachability:
    def test_bfs_reachable_includes_start(self, chain: DiGraph):
        assert bfs_reachable(chain, "b") == {"b", "c", "d"}

    def test_dfs_reachable_matches_bfs(self, chain: DiGraph):
        assert dfs_reachable(chain, "a") == bfs_reachable(chain, "a")

    def test_reachable_from_sink_is_singleton(self, chain: DiGraph):
        assert bfs_reachable(chain, "d") == {"d"}

    def test_bfs_unknown_vertex_raises(self, chain: DiGraph):
        with pytest.raises(VertexNotFoundError):
            bfs_reachable(chain, "zzz")

    def test_is_reachable_forward(self, chain: DiGraph):
        assert is_reachable(chain, "a", "d")

    def test_is_reachable_backward_false(self, chain: DiGraph):
        assert not is_reachable(chain, "d", "a")

    def test_is_reachable_reflexive(self, chain: DiGraph):
        assert is_reachable(chain, "b", "b")

    def test_is_reachable_dfs_method(self, chain: DiGraph):
        assert is_reachable(chain, "a", "c", method="dfs")

    def test_is_reachable_invalid_method(self, chain: DiGraph):
        with pytest.raises(ValueError):
            is_reachable(chain, "a", "b", method="magic")

    def test_is_reachable_unknown_target(self, chain: DiGraph):
        with pytest.raises(VertexNotFoundError):
            is_reachable(chain, "a", "zzz")

    def test_descendants_excludes_self(self, chain: DiGraph):
        assert descendants(chain, "b") == {"c", "d"}

    def test_ancestors_excludes_self(self, chain: DiGraph):
        assert ancestors(chain, "c") == {"a", "b"}

    def test_ancestors_of_source_empty(self, chain: DiGraph):
        assert ancestors(chain, "a") == set()


class TestComponents:
    def test_single_component(self, chain: DiGraph):
        assert len(weakly_connected_components(chain)) == 1

    def test_two_components(self, two_components: DiGraph):
        components = weakly_connected_components(two_components)
        assert sorted(sorted(c) for c in components) == [["a", "b"], ["x", "y"]]

    def test_restrict_to_subset(self, chain: DiGraph):
        components = weakly_connected_components(chain, restrict_to={"a", "b", "d"})
        assert sorted(sorted(c) for c in components) == [["a", "b"], ["d"]]

    def test_restrict_to_ignores_unknown(self, chain: DiGraph):
        components = weakly_connected_components(chain, restrict_to={"a", "ghost"})
        assert components == [{"a"}]

    def test_is_weakly_connected_true(self, chain: DiGraph):
        assert is_weakly_connected(chain)

    def test_is_weakly_connected_false(self, two_components: DiGraph):
        assert not is_weakly_connected(two_components)

    def test_empty_graph_is_connected(self):
        assert is_weakly_connected(DiGraph())


class TestTopologicalSort:
    def test_chain_order(self, chain: DiGraph):
        assert topological_sort(chain) == ["a", "b", "c", "d"]

    def test_order_respects_edges(self):
        graph = DiGraph(edges=[("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")])
        order = topological_sort(graph)
        position = {v: i for i, v in enumerate(order)}
        for tail, head in graph.iter_edges():
            assert position[tail] < position[head]

    def test_cycle_raises(self, cyclic: DiGraph):
        with pytest.raises(NotADagError):
            topological_sort(cyclic)

    def test_is_dag(self, chain: DiGraph, cyclic: DiGraph):
        assert is_dag(chain)
        assert not is_dag(cyclic)


class TestAllPairs:
    def test_all_pairs_on_dag(self, chain: DiGraph):
        reach = all_pairs_reachability(chain)
        assert reach["a"] == {"a", "b", "c", "d"}
        assert reach["d"] == {"d"}

    def test_all_pairs_on_cycle_falls_back(self, cyclic: DiGraph):
        reach = all_pairs_reachability(cyclic)
        assert reach["a"] == {"a", "b", "c"}

    def test_matrix_matches_is_reachable(self, chain: DiGraph):
        matrix = simple_paths_exist_matrix(chain)
        for (u, v), expected in matrix.items():
            assert expected == is_reachable(chain, u, v)

    def test_matrix_is_reflexive(self, chain: DiGraph):
        matrix = simple_paths_exist_matrix(chain)
        for v in chain.vertices():
            assert matrix[(v, v)]
