"""Tests for the shard routing subsystem.

Covers the persisted routing catalog (overrides survive a reopen, routed
ingest lands on the override shard), the online ``rebalance`` maintenance
path (bit-identical answers, id stability, auto target pick, error
surface), crash recovery at the ``routing.migrate`` fault point plus
simulated hard crashes in both journal states, hot-spec read replicas
(attach, rotation, invalidation, refresh, error bounds), the per-shard
skew table in ``cache_stats()``, and the CLI / wire-protocol fronts of
all of the above.
"""

from __future__ import annotations

import json

import pytest

from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.engine.parallel import CrossRunExecutor
from repro.exceptions import ReproError, StorageError
from repro.faults import FaultPlan, FaultRule
from repro.server import RemoteStore, ServerThread
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.replicas import MAX_REPLICAS, REPLICA_DIR_NAME
from repro.storage.routing import _copy_spec_rows
from repro.storage.sharded import (
    ShardedProvenanceStore,
    shard_of_spec,
)
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size

SHARDS = 4
HOT_RUNS = 6
COLD_RUNS = 2


def _name_on_shard(prefix: str, shard: int, shards: int = SHARDS) -> str:
    """A deterministic spec name the CRC-32 hash places on *shard*."""
    for index in range(10_000):
        candidate = f"{prefix}-{index}"
        if shard_of_spec(candidate, shards) == shard:
            return candidate
    raise AssertionError(f"no {prefix!r} candidate hashes onto shard {shard}")


def _make_spec(name: str, seed: int):
    return generate_specification(
        SyntheticSpecConfig(
            n_modules=12,
            n_edges=14,
            hierarchy_size=2,
            hierarchy_depth=2,
            name=name,
            seed=seed,
        )
    )


@pytest.fixture()
def workload(tmp_path):
    """A skewed two-spec workload: hot and cold specs hash to one shard."""
    hot_name = "routing-hot"
    hot_shard = shard_of_spec(hot_name, SHARDS)
    cold_name = _name_on_shard("routing-cold", hot_shard)
    specs = {hot_name: _make_spec(hot_name, 7), cold_name: _make_spec(cold_name, 8)}
    labelers = {name: SkeletonLabeler(spec, "tcm") for name, spec in specs.items()}
    labeled = [
        labelers[hot_name].label_run(
            generate_run_with_size(
                specs[hot_name], 24, seed=index, name=f"hot-{index}"
            ).run
        )
        for index in range(HOT_RUNS)
    ] + [
        labelers[cold_name].label_run(
            generate_run_with_size(
                specs[cold_name], 24, seed=100 + index, name=f"cold-{index}"
            ).run
        )
        for index in range(COLD_RUNS)
    ]
    store = ShardedProvenanceStore(tmp_path / "routed", SHARDS)
    store.add_labeled_runs(labeled)
    reference = ProvenanceStore(tmp_path / "reference.db")
    for item in labeled:
        reference.add_labeled_run(item)
    anchor_vertex = labeled[0].run.vertices()[0]
    anchor = (anchor_vertex.module, anchor_vertex.instance)
    yield {
        "store": store,
        "reference": reference,
        "hot": hot_name,
        "cold": cold_name,
        "hot_shard": hot_shard,
        "labelers": labelers,
        "specs": specs,
        "anchor": anchor,
        "directory": tmp_path / "routed",
    }
    reference.close()
    store.close()


def _sweep(store, name, anchor, workers=2):
    per_run, skipped = CrossRunExecutor(store, workers=workers).sweep(name, anchor)
    return list(per_run.values()), len(skipped)


def _assert_matches_reference(workload, stage: str) -> None:
    for name in (workload["hot"], workload["cold"]):
        got = _sweep(workload["store"], name, workload["anchor"])
        want = _sweep(workload["reference"], name, workload["anchor"], workers=1)
        assert got == want, f"{stage}: sweep of {name!r} diverged"


class TestRoutingPersistence:
    def test_rebalance_persists_across_reopen(self, workload):
        store, hot = workload["store"], workload["hot"]
        target = (workload["hot_shard"] + 1) % SHARDS
        summary = store.rebalance(hot, target)
        assert summary == {
            "specification": hot,
            "source": workload["hot_shard"],
            "target": target,
            "moved_runs": HOT_RUNS,
        }
        run_ids = [row["run_id"] for row in store.list_runs(hot)]
        store.close()
        reopened = ShardedProvenanceStore(workload["directory"])
        try:
            table = reopened.routing_table()
            assert table["specs"][hot]["shard"] == target
            assert table["specs"][hot]["hash_shard"] == workload["hot_shard"]
            assert table["routed_runs"] == HOT_RUNS
            # ids survived the migration and the reopen
            assert [row["run_id"] for row in reopened.list_runs(hot)] == run_ids
            got = _sweep(reopened, hot, workload["anchor"])
            want = _sweep(workload["reference"], hot, workload["anchor"], workers=1)
            assert got == want
        finally:
            reopened.close()
        workload["store"] = ShardedProvenanceStore(workload["directory"])

    def test_routed_ingest_lands_on_override_shard(self, workload):
        store, hot = workload["store"], workload["hot"]
        target = (workload["hot_shard"] + 2) % SHARDS
        store.rebalance(hot, target)
        extra = workload["labelers"][hot].label_run(
            generate_run_with_size(
                workload["specs"][hot], 24, seed=55, name="hot-extra"
            ).run
        )
        new_id = store.add_labeled_run(extra)
        assert store.shard_path_of(new_id) == store._shard_paths[target]
        workload["reference"].add_labeled_run(extra)
        _assert_matches_reference(workload, "after routed ingest")

    def test_delete_run_forgets_its_override(self, workload):
        store, hot = workload["store"], workload["hot"]
        store.rebalance(hot, (workload["hot_shard"] + 1) % SHARDS)
        assert store.routing_table()["routed_runs"] == HOT_RUNS
        victim = store.list_runs(hot)[-1]["run_id"]
        store.delete_run(victim)
        assert store.routing_table()["routed_runs"] == HOT_RUNS - 1


class TestRebalanceMechanics:
    def test_answers_bit_identical_through_the_maintenance_path(self, workload):
        store, hot = workload["store"], workload["hot"]
        _assert_matches_reference(workload, "before rebalance")
        ids_before = [row["run_id"] for row in store.list_runs(hot)]
        store.rebalance(hot)
        _assert_matches_reference(workload, "after rebalance")
        store.replicate(hot, 2)
        _assert_matches_reference(workload, "after replicate")
        assert [row["run_id"] for row in store.list_runs(hot)] == ids_before

    def test_source_rows_move_to_the_target_shard(self, workload):
        store, hot = workload["store"], workload["hot"]
        source = workload["hot_shard"]
        target = (source + 1) % SHARDS
        store.rebalance(hot, target)
        per_shard = {
            row["shard"]: row
            for row in store.cache_stats()["shards"]["per_shard"]
        }
        assert per_shard[target]["runs"] == HOT_RUNS
        assert per_shard[target]["routed_specs"] == 1
        # only the colliding cold spec's rows stay behind
        assert per_shard[source]["runs"] == COLD_RUNS
        assert per_shard[source]["specs"] == 1

    def test_split_picks_the_least_loaded_shard(self, workload):
        store, hot = workload["store"], workload["hot"]
        loads = store._shard_run_counts()
        expected = min(
            (shard for shard in range(SHARDS) if shard != workload["hot_shard"]),
            key=lambda shard: (loads[shard], shard),
        )
        summary = store.split(hot)
        assert summary["target"] == expected
        assert summary["moved_runs"] == HOT_RUNS

    def test_rebalance_onto_the_current_shard_is_a_noop(self, workload):
        store, hot = workload["store"], workload["hot"]
        summary = store.rebalance(hot, workload["hot_shard"])
        assert summary["moved_runs"] == 0
        assert hot not in store.routing_table()["specs"]

    def test_rebalance_error_surface(self, workload, tmp_path):
        store = workload["store"]
        with pytest.raises(StorageError, match="no specification named"):
            store.rebalance("ghost")
        with pytest.raises(StorageError, match="out of range"):
            store.rebalance(workload["hot"], SHARDS + 3)
        with ShardedProvenanceStore(tmp_path / "solo", 1) as solo:
            with pytest.raises(StorageError, match="at least 2 shards"):
                solo.rebalance("anything")


class TestCrashRecovery:
    def test_injected_crash_recovers_in_process(self, workload):
        store, hot = workload["store"], workload["hot"]
        crash = FaultPlan([FaultRule("routing.migrate", "crash", once=True)])
        with crash.active():
            with pytest.raises(ReproError):
                store.rebalance(hot)
        # rolled back: no override, no journal, answers unchanged
        assert hot not in store.routing_table()["specs"]
        assert store._routing.journal_rows() == []
        _assert_matches_reference(workload, "after crashed migration")
        # the maintenance path still works after the repair
        assert store.rebalance(hot)["moved_runs"] == HOT_RUNS
        _assert_matches_reference(workload, "after retried migration")

    def _stage_migration(self, workload, *, flip: bool) -> tuple[int, list[int]]:
        """Copy (and optionally flip) the hot spec by hand, then hard-crash."""
        store, hot = workload["store"], workload["hot"]
        source = workload["hot_shard"]
        target = (source + 1) % SHARDS
        connection = store._stores[source]._connection
        spec_id = int(
            connection.execute(
                "SELECT spec_id FROM specifications WHERE name = ?", (hot,)
            ).fetchone()["spec_id"]
        )
        run_ids = [
            int(row["run_id"])
            for row in connection.execute(
                "SELECT run_id FROM runs WHERE spec_id = ? ORDER BY run_id",
                (spec_id,),
            )
        ]
        store._routing.begin_migration(hot, spec_id, source, target, run_ids)
        _copy_spec_rows(store, spec_id, source, target)
        if flip:
            store._routing.flip(hot, target, run_ids)
        store.close()  # the simulated hard crash: journal row left behind
        return target, run_ids

    def test_hard_crash_while_copying_rolls_back_on_reopen(self, workload):
        target, _ = self._stage_migration(workload, flip=False)
        reopened = ShardedProvenanceStore(workload["directory"])
        workload["store"] = reopened
        assert workload["hot"] not in reopened.routing_table()["specs"]
        assert reopened._routing.journal_rows() == []
        # the partial target copy is gone
        count = reopened._stores[target]._connection.execute(
            "SELECT COUNT(*) FROM runs"
        ).fetchone()[0]
        assert count == 0
        _assert_matches_reference(workload, "rolled-back hard crash")

    def test_hard_crash_after_flip_rolls_forward_on_reopen(self, workload):
        target, run_ids = self._stage_migration(workload, flip=True)
        reopened = ShardedProvenanceStore(workload["directory"])
        workload["store"] = reopened
        table = reopened.routing_table()
        assert table["specs"][workload["hot"]]["shard"] == target
        assert reopened._routing.journal_rows() == []
        # the source copy is gone; the ids survived on the target
        assert [
            row["run_id"] for row in reopened.list_runs(workload["hot"])
        ] == run_ids
        source_count = reopened._stores[workload["hot_shard"]]._connection.execute(
            "SELECT COUNT(*) FROM runs WHERE spec_id IN "
            "(SELECT spec_id FROM specifications WHERE name = ?)",
            (workload["hot"],),
        ).fetchone()[0]
        assert source_count == 0
        _assert_matches_reference(workload, "rolled-forward hard crash")


class TestReplicas:
    def test_replicate_attaches_snapshot_files(self, workload):
        store, hot = workload["store"], workload["hot"]
        paths = store.replicate(hot, 2)
        assert len(paths) == 2
        for path in paths:
            assert REPLICA_DIR_NAME in path
        primary = store._shard_paths[workload["hot_shard"]]
        rotation = store.replica_rotation(primary)
        assert rotation == [str(primary), *paths]
        assert store.read_fan_of(hot) == 3
        _assert_matches_reference(workload, "with replicas attached")

    def test_writes_invalidate_and_the_next_rotation_refreshes(self, workload):
        store, hot = workload["store"], workload["hot"]
        store.replicate(hot, 1)
        extra = workload["labelers"][hot].label_run(
            generate_run_with_size(
                workload["specs"][hot], 24, seed=77, name="hot-late"
            ).run
        )
        store.add_labeled_run(extra)
        workload["reference"].add_labeled_run(extra)
        # the refreshed snapshot serves the new run too — bit-identical
        _assert_matches_reference(workload, "after invalidating write")
        primary = store._shard_paths[workload["hot_shard"]]
        assert len(store.replica_rotation(primary)) == 2

    def test_replica_error_surface(self, workload):
        store = workload["store"]
        with pytest.raises(StorageError):
            store.replicate("ghost", 1)
        with pytest.raises(StorageError, match="replica count"):
            store.replicate(workload["hot"], 0)
        with pytest.raises(StorageError, match="replica count"):
            store.replicate(workload["hot"], MAX_REPLICAS + 1)

    def test_previous_process_replicas_are_dropped_on_open(self, workload):
        store, hot = workload["store"], workload["hot"]
        store.replicate(hot, 2)
        replica_dir = workload["directory"] / REPLICA_DIR_NAME
        assert len(list(replica_dir.glob("shard-*.db"))) == 2
        store.close()
        reopened = ShardedProvenanceStore(workload["directory"])
        workload["store"] = reopened
        assert list(replica_dir.glob("shard-*.db")) == []
        primary = reopened._shard_paths[workload["hot_shard"]]
        assert reopened.replica_rotation(primary) == [str(primary)]


class TestSkewStats:
    def test_per_shard_skew_table_shape(self, workload):
        store = workload["store"]
        shards = store.cache_stats()["shards"]
        assert shards["count"] == SHARDS
        assert len(shards["per_shard"]) == SHARDS
        for row in shards["per_shard"]:
            assert set(row) == {
                "shard",
                "file",
                "specs",
                "runs",
                "file_bytes",
                "sweeps",
                "replicas",
                "routed_specs",
            }
        assert sum(row["runs"] for row in shards["per_shard"]) == (
            HOT_RUNS + COLD_RUNS
        )
        hot_row = shards["per_shard"][workload["hot_shard"]]
        assert hot_row["runs"] == HOT_RUNS + COLD_RUNS
        assert hot_row["file_bytes"] > 0

    def test_skew_table_tracks_rebalance_and_replicas(self, workload):
        store, hot = workload["store"], workload["hot"]
        target = (workload["hot_shard"] + 1) % SHARDS
        store.rebalance(hot, target)
        store.replicate(hot, 2)
        _sweep(store, hot, workload["anchor"])
        per_shard = store.cache_stats()["shards"]["per_shard"]
        row = per_shard[target]
        assert row["replicas"] == 2
        assert row["routed_specs"] == 1
        assert row["sweeps"]["kernel"] + row["sweeps"]["sql"] >= 1


class TestRoutingCLI:
    def test_stats_rebalance_replicate_routing_roundtrip(self, workload, capsys):
        from repro.cli import main

        store, hot = workload["store"], workload["hot"]
        target = (workload["hot_shard"] + 1) % SHARDS
        store.close()
        database = str(workload["directory"])
        assert main(["stats", "--database", database]) == 0
        out = capsys.readouterr().out
        assert "shard" in out and "file_bytes" in out
        assert main(["stats", "--database", database, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["shards"]["count"] == SHARDS
        assert main([
            "rebalance", "--database", database, "--spec", hot,
            "--shard", str(target),
        ]) == 0
        assert f"moved {HOT_RUNS} runs" in capsys.readouterr().out
        assert main([
            "replicate", "--database", database, "--spec", hot, "--copies", "2",
        ]) == 0
        assert "2 replica" in capsys.readouterr().out
        assert main(["routing", "--database", database, "--json"]) == 0
        table = json.loads(capsys.readouterr().out)
        assert table["specs"][hot]["shard"] == target
        assert main(["routing", "--database", database]) == 0
        assert hot in capsys.readouterr().out
        workload["store"] = ShardedProvenanceStore(workload["directory"])

    def test_single_file_database_is_refused_clearly(self, tmp_path, capsys, workload):
        from repro.cli import main

        database = tmp_path / "single.db"
        with ProvenanceStore(database) as single:
            for item in [
                workload["labelers"][workload["hot"]].label_run(
                    generate_run_with_size(
                        workload["specs"][workload["hot"]], 24, seed=9, name="solo"
                    ).run
                )
            ]:
                single.add_labeled_run(item)
        assert main(["stats", "--database", str(database)]) == 0
        assert "single-file" in capsys.readouterr().out
        for command in (
            ["rebalance", "--database", str(database), "--spec", workload["hot"]],
            ["replicate", "--database", str(database), "--spec", workload["hot"]],
            ["routing", "--database", str(database)],
        ):
            assert main(command) == 2
            assert "single" in capsys.readouterr().err.lower()


class TestRoutingOverTheWire:
    def test_maintenance_opcodes_roundtrip(self, workload):
        store, hot = workload["store"], workload["hot"]
        with ServerThread(store) as server, RemoteStore(server.url) as client:
            summary = client.rebalance(hot)
            assert summary["moved_runs"] == HOT_RUNS
            replicas = client.replicate(hot, 2)
            assert len(replicas) == 2
            table = client.routing_table()
            assert table["specs"][hot]["shard"] == summary["target"]
            health = client.health()
            assert health["shards"]["count"] == SHARDS
            rows = health["shards"]["per_shard"]
            assert rows[summary["target"]]["replicas"] == 2
        _assert_matches_reference(workload, "after wire maintenance")

    def test_single_file_server_refuses_maintenance(self, tmp_path):
        store = ProvenanceStore(tmp_path / "wire-single.db")
        spec = _make_spec("wire-solo", 3)
        labeler = SkeletonLabeler(spec, "tcm")
        store.add_labeled_run(
            labeler.label_run(
                generate_run_with_size(spec, 24, seed=1, name="solo").run
            )
        )
        with ServerThread(store) as server, RemoteStore(server.url) as client:
            with pytest.raises(StorageError, match="sharded"):
                client.rebalance("wire-solo")
            with pytest.raises(StorageError, match="sharded"):
                client.replicate("wire-solo", 1)
            with pytest.raises(StorageError, match="sharded"):
                client.routing_table()
        store.close()
