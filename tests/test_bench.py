"""Tests for the benchmark harness (smoke scale) and reporting utilities."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    figure_12_label_length,
    figure_13_construction_time,
    figure_14_query_time,
    figure_15_label_length_comparison,
    figure_16_construction_comparison,
    figure_17_query_comparison,
    figure_18_spec_influence_label_length,
    figure_20_spec_influence_query,
    scheme_comparison,
    spec_influence,
    table_1_real_workflows,
    table_2_complexity,
    throughput_query_engine,
)
from repro.bench.harness import get_scale, paper_run_sizes
from repro.bench.metrics import (
    amortized_construction_seconds,
    amortized_label_bits,
    sample_query_pairs,
)
from repro.bench.reporting import ExperimentResult, format_csv, format_table, write_report
from repro.exceptions import DatasetError


class TestScales:
    def test_known_scales(self):
        assert get_scale("smoke").name == "smoke"
        assert get_scale("default").run_sizes[-1] == 12_800
        assert get_scale("paper").run_sizes == paper_run_sizes()

    def test_scale_object_passthrough(self):
        preset = get_scale("smoke")
        assert get_scale(preset) is preset

    def test_unknown_scale_rejected(self):
        with pytest.raises(DatasetError):
            get_scale("galactic")

    def test_paper_run_sizes_double(self):
        sizes = paper_run_sizes()
        assert sizes[0] == 100 and sizes[-1] == 102_400
        for small, large in zip(sizes, sizes[1:]):
            assert large == 2 * small


class TestMetrics:
    def test_amortized_label_bits_no_amortization(self):
        assert amortized_label_bits(30, 10_000, 1_000, None) == 30

    def test_amortized_label_bits_decreases_with_runs(self):
        one = amortized_label_bits(30, 10_000, 1_000, 1)
        ten = amortized_label_bits(30, 10_000, 1_000, 10)
        assert one > ten > 30

    def test_amortized_label_bits_invalid(self):
        with pytest.raises(ValueError):
            amortized_label_bits(30, 10_000, 1_000, 0)

    def test_amortized_construction(self):
        assert amortized_construction_seconds(1.0, 10.0, 10) == pytest.approx(2.0)
        assert amortized_construction_seconds(1.0, 10.0, None) == pytest.approx(1.0)

    def test_sample_query_pairs_deterministic(self, rng):
        import random

        first = sample_query_pairs(["a", "b", "c"], 10, random.Random(3))
        second = sample_query_pairs(["a", "b", "c"], 10, random.Random(3))
        assert first == second
        assert len(first) == 10


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table([{"x": 1, "y": 2.5}, {"x": 10, "y": 0.25}])
        lines = text.splitlines()
        assert lines[0].startswith("x")
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_csv(self):
        csv = format_csv([{"a": 1, "b": "z"}], ["a", "b"])
        assert csv.splitlines() == ["a,b", "1,z"]

    def test_experiment_result_text(self):
        result = ExperimentResult("figure-0", "demo", [{"a": 1}], notes=["hello"])
        text = result.to_text()
        assert "figure-0" in text and "hello" in text

    def test_write_report(self, tmp_path):
        result = ExperimentResult("figure-0", "demo", [{"a": 1}])
        path = write_report(result, tmp_path)
        assert path.read_text().startswith("== figure-0")


@pytest.fixture(scope="module")
def comparison_result():
    return scheme_comparison("smoke", seed=1)


@pytest.fixture(scope="module")
def influence_result():
    return spec_influence("smoke", seed=1, spec_sizes=(50, 100))


class TestExperimentsSmoke:
    def test_table_1_matches_published_characteristics(self):
        rows = {row["workflow"]: row for row in table_1_real_workflows().rows}
        assert rows["QBLAST"]["nG"] == 58 and rows["QBLAST"]["mG"] == 72
        assert rows["ProDisc"]["|TG|"] == 9 and rows["ProDisc"]["[TG]"] == 3
        assert len(rows) == 6

    def test_table_2_has_all_schemes(self):
        result = table_2_complexity("smoke", seed=1)
        schemes = {row["scheme"] for row in result.rows}
        assert {"TCM+SKL", "BFS+SKL", "BFS"} <= schemes

    def test_figure_12_label_length_is_logarithmic(self):
        result = figure_12_label_length("smoke", seed=1)
        rows = result.rows
        assert len(rows) == 3
        # label length grows, but stays under the 3 log nR asymptote
        assert rows[-1]["max_label_bits"] >= rows[0]["max_label_bits"]
        for row in rows:
            # 3 log2(nR) for the coordinates plus ceil(log2 nG) = 6 for QBLAST,
            # with +3 slack for the per-coordinate ceil.
            assert row["max_label_bits"] <= row["bound_3log_nR"] + 9
            assert row["avg_label_bits"] <= row["max_label_bits"]

    def test_figure_13_plan_setting_is_faster(self):
        result = figure_13_construction_time("smoke", seed=1)
        for row in result.rows:
            assert row["with_plan_ms"] <= row["default_ms"]

    def test_figure_14_query_time_positive(self):
        result = figure_14_query_time("smoke", seed=1)
        assert all(row["query_us"] > 0 for row in result.rows)

    def test_scheme_comparison_contains_all_variants(self, comparison_result):
        schemes = {row["scheme"] for row in comparison_result.rows}
        assert schemes == {"tcm+skl", "bfs+skl", "tcm", "bfs"}

    def test_figure_15_amortization_monotone(self, comparison_result):
        result = figure_15_label_length_comparison("smoke", shared=comparison_result)
        by_key = {
            (row["run_size"], row["amortized_runs"]): row["max_label_bits"]
            for row in result.rows
            if row["scheme"] == "tcm+skl"
        }
        for (size, runs), bits in by_key.items():
            if (size, 1) in by_key and runs == 10:
                assert bits <= by_key[(size, 1)]

    def test_figure_16_skl_cheaper_than_direct_tcm(self, comparison_result):
        result = figure_16_construction_comparison("smoke", shared=comparison_result)
        largest = max(row["run_size"] for row in result.rows if row["scheme"] == "tcm")
        tcm_direct = next(
            row["construction_ms"]
            for row in result.rows
            if row["scheme"] == "tcm" and row["run_size"] == largest
        )
        skl = next(
            row["construction_ms"]
            for row in result.rows
            if row["scheme"] == "bfs+skl" and row["run_size"] == largest
        )
        assert skl < tcm_direct * 50  # SKL must not be dramatically slower

    def test_figure_17_bfs_direct_slowest(self, comparison_result):
        result = figure_17_query_comparison("smoke", shared=comparison_result)
        largest = max(row["run_size"] for row in result.rows)
        def query_of(scheme):
            return next(
                row["query_us"] for row in result.rows
                if row["scheme"] == scheme and row["run_size"] == largest
            )
        assert query_of("tcm+skl") < query_of("bfs+skl")

    def test_figure_18_and_20_have_all_spec_sizes(self, influence_result):
        fig18 = figure_18_spec_influence_label_length("smoke", shared=influence_result)
        fig20 = figure_20_spec_influence_query("smoke", shared=influence_result)
        assert {row["spec_size"] for row in fig18.rows} == {50, 100}
        assert {row["spec_size"] for row in fig20.rows} == {50, 100}

    def test_results_render_as_text_and_csv(self, comparison_result):
        assert "tcm+skl" in comparison_result.to_text()
        assert comparison_result.to_csv().count("\n") == len(comparison_result.rows)

    def test_throughput_query_engine_smoke(self):
        result = throughput_query_engine("smoke", seed=1)
        schemes = {row["scheme"] for row in result.rows}
        # both skeleton variants always run; direct baselines fit smoke limits
        assert {"tcm+skl", "bfs+skl", "tcm", "bfs"} <= schemes
        for row in result.rows:
            assert row["pairs"] > 0
            assert row["single_qps"] > 0
            assert row["batch_qps"] > 0
            # the experiment itself raises if batch and single answers differ,
            # so reaching this point already proves consistency; the speedup
            # column must at least be populated
            assert row["speedup"] is not None
        workloads = {row["scheme"]: row["workload"] for row in result.rows}
        assert workloads["bfs"] == "hot-source"
        assert workloads["tcm+skl"] == "uniform"
