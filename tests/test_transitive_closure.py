"""Unit tests for the bitset transitive closure."""

from __future__ import annotations

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graphs.digraph import DiGraph
from repro.graphs.transitive_closure import transitive_closure
from repro.graphs.traversal import simple_paths_exist_matrix


@pytest.fixture()
def dag() -> DiGraph:
    return DiGraph(
        edges=[("s", "a"), ("s", "b"), ("a", "c"), ("b", "c"), ("c", "t"), ("s", "t")]
    )


class TestClosure:
    def test_matches_traversal_oracle(self, dag: DiGraph):
        closure = transitive_closure(dag)
        oracle = simple_paths_exist_matrix(dag)
        for (u, v), expected in oracle.items():
            assert closure.reaches(u, v) == expected

    def test_reflexive(self, dag: DiGraph):
        closure = transitive_closure(dag)
        for v in dag.vertices():
            assert closure.reaches(v, v)

    def test_reachable_set(self, dag: DiGraph):
        closure = transitive_closure(dag)
        assert closure.reachable_set("a") == {"a", "c", "t"}

    def test_label_bits_equals_vertex_count(self, dag: DiGraph):
        closure = transitive_closure(dag)
        assert closure.label_bits() == dag.vertex_count

    def test_row_lookup(self, dag: DiGraph):
        closure = transitive_closure(dag)
        row = closure.row("s")
        assert row.bit_count() == dag.vertex_count  # source reaches everything

    def test_unknown_vertex_raises(self, dag: DiGraph):
        closure = transitive_closure(dag)
        with pytest.raises(VertexNotFoundError):
            closure.reaches("s", "nope")
        with pytest.raises(VertexNotFoundError):
            closure.row("nope")

    def test_to_matrix_dimensions(self, dag: DiGraph):
        closure = transitive_closure(dag)
        matrix = closure.to_matrix()
        assert len(matrix) == dag.vertex_count
        assert all(len(row) == dag.vertex_count for row in matrix)

    def test_to_matrix_diagonal(self, dag: DiGraph):
        closure = transitive_closure(dag)
        matrix = closure.to_matrix()
        for i in range(dag.vertex_count):
            assert matrix[i][i] == 1

    def test_vertex_count_property(self, dag: DiGraph):
        assert transitive_closure(dag).vertex_count == dag.vertex_count

    def test_cyclic_graph_fallback(self):
        cyclic = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
        closure = transitive_closure(cyclic)
        assert closure.reaches("a", "d")
        assert closure.reaches("b", "a")
        assert not closure.reaches("d", "a")

    def test_single_vertex(self):
        graph = DiGraph(vertices=["only"])
        closure = transitive_closure(graph)
        assert closure.reaches("only", "only")
        assert closure.label_bits() == 1

    def test_empty_graph(self):
        closure = transitive_closure(DiGraph())
        assert closure.vertex_count == 0
        assert closure.to_matrix() == []
