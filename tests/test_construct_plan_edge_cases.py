"""Edge-case specifications for plan construction and labeling correctness.

These hand-built specifications exercise the sharing patterns that make
ConstructPlan subtle: forks nested inside forks that share the same source,
loops containing the global source or sink, forks whose shared terminals are
owned by sibling loops, and deep nesting.  For every specification we
generate several runs, reconstruct the plan from the bare graph, compare it
against the generator's ground truth, and check every labeled reachability
answer against an exhaustive oracle.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs.traversal import all_pairs_reachability
from repro.skeleton.construct import construct_plan
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import RangeProfile, generate_run
from repro.workflow.specification import WorkflowSpecification


def nested_forks_sharing_source() -> WorkflowSpecification:
    """F_inner (a -> c -> b) nested inside F_outer (internals {b, c}), sharing source a."""
    return WorkflowSpecification.from_edges(
        edges=[("a", "b"), ("a", "c"), ("c", "b"), ("b", "e")],
        forks=[("Fouter", {"b", "c"}), ("Finner", {"c"})],
        name="nested-forks-shared-source",
    )


def loop_containing_global_source() -> WorkflowSpecification:
    """A loop over {s, x} where s is the workflow's source."""
    return WorkflowSpecification.from_edges(
        edges=[("s", "x"), ("x", "t")],
        loops=[("L", {"s", "x"})],
        name="loop-at-source",
    )


def loop_containing_global_sink() -> WorkflowSpecification:
    """A loop over {y, t} where t is the workflow's sink."""
    return WorkflowSpecification.from_edges(
        edges=[("s", "y"), ("y", "t")],
        loops=[("L", {"y", "t"})],
        name="loop-at-sink",
    )


def fork_source_is_loop_sink() -> WorkflowSpecification:
    """A fork whose shared source is the sink of a preceding sibling loop."""
    return WorkflowSpecification.from_edges(
        edges=[("a", "x"), ("x", "y"), ("y", "f"), ("f", "c")],
        forks=[("F", {"f"})],
        loops=[("L", {"x", "y"})],
        name="fork-after-loop",
    )


def fork_sink_is_loop_source() -> WorkflowSpecification:
    """A fork whose shared sink is the source of a following sibling loop."""
    return WorkflowSpecification.from_edges(
        edges=[("a", "f"), ("f", "x"), ("x", "y"), ("y", "b")],
        forks=[("F", {"f"})],
        loops=[("L", {"x", "y"})],
        name="fork-before-loop",
    )


def fork_filling_loop_branch() -> WorkflowSpecification:
    """The paper's F2/L1 situation in isolation: a fork spanning a loop's only branch."""
    return WorkflowSpecification.from_edges(
        edges=[("s", "e"), ("e", "f"), ("f", "g"), ("g", "t")],
        forks=[("F", {"f"})],
        loops=[("L", {"e", "f", "g"})],
        name="fork-fills-loop",
    )


def two_forks_sharing_both_terminals() -> WorkflowSpecification:
    """Two edge-disjoint sibling forks with identical source and sink."""
    return WorkflowSpecification.from_edges(
        edges=[("s", "x"), ("x", "t"), ("s", "y"), ("y", "z"), ("z", "t")],
        forks=[("F1", {"x"}), ("F2", {"y", "z"})],
        name="parallel-sibling-forks",
    )


def deep_nesting_chain() -> WorkflowSpecification:
    """Loop > fork > loop > fork nesting, four levels deep."""
    return WorkflowSpecification.from_edges(
        edges=[
            ("s", "p"), ("p", "q"), ("q", "r"), ("r", "u"), ("u", "v"), ("v", "w"),
            ("w", "z"), ("z", "t"),
        ],
        # L1 spans p..z; F1 = internals {q,r,u,v,w}; L2 spans r..v; F2 = internals {u}
        loops=[("L1", {"p", "q", "r", "u", "v", "w", "z"}), ("L2", {"r", "u", "v"})],
        forks=[("F1", {"q", "r", "u", "v", "w"}), ("F2", {"u"})],
        name="deep-nesting",
    )


EDGE_CASE_SPECS = [
    nested_forks_sharing_source,
    loop_containing_global_source,
    loop_containing_global_sink,
    fork_source_is_loop_sink,
    fork_sink_is_loop_source,
    fork_filling_loop_branch,
    two_forks_sharing_both_terminals,
    deep_nesting_chain,
]


@pytest.mark.parametrize("build_spec", EDGE_CASE_SPECS, ids=lambda f: f.__name__)
class TestEdgeCaseSpecifications:
    def test_specification_is_valid(self, build_spec):
        spec = build_spec()
        assert spec.hierarchy.size == len(spec.regions) + 1

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reconstructed_plan_matches_ground_truth(self, build_spec, seed):
        spec = build_spec()
        generated = generate_run(spec, RangeProfile(1, 3), seed=seed)
        result = construct_plan(spec, generated.run)
        assert result.plan.signature() == generated.plan.signature()
        assert set(result.context) == set(generated.run.vertices())

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_labeled_reachability_matches_oracle(self, build_spec, seed):
        spec = build_spec()
        generated = generate_run(spec, RangeProfile(2, 4), seed=seed)
        labeled = SkeletonLabeler(spec, "tcm").label_run(generated.run)
        reach = all_pairs_reachability(generated.run.graph)
        for source in generated.run.vertices():
            for target in generated.run.vertices():
                assert labeled.reaches(source, target) == (target in reach[source]), (
                    f"{spec.name}: wrong answer for {source} -> {target}"
                )

    def test_plan_size_bound_holds(self, build_spec):
        spec = build_spec()
        generated = generate_run(spec, RangeProfile(1, 4), seed=7)
        result = construct_plan(spec, generated.run)
        assert len(result.plan) <= 4 * generated.run.edge_count


class TestSpecificStructures:
    def test_nested_forks_share_run_source(self):
        """Every copy of both forks hangs off the single shared source a1."""
        spec = nested_forks_sharing_source()
        generated = generate_run(spec, RangeProfile(2, 2), seed=3)
        run = generated.run
        assert len(run.instances_of("a")) == 1
        assert len(run.instances_of("c")) == 4  # 2 outer copies x 2 inner copies

    def test_loop_at_source_has_single_global_source(self):
        spec = loop_containing_global_source()
        generated = generate_run(spec, RangeProfile(3, 3), seed=1)
        run = generated.run
        assert run.source.module == "s"
        assert len(run.instances_of("s")) == 3
        assert len(run.instances_of("t")) == 1

    def test_fork_after_loop_attaches_to_last_iteration(self):
        spec = fork_source_is_loop_sink()
        generated = generate_run(spec, RangeProfile(3, 3), seed=2)
        run = generated.run
        labeled = SkeletonLabeler(spec, "bfs").label_run(run)
        # every fork copy hangs off the *last* loop iteration's sink, so every
        # y execution (and every earlier loop vertex) reaches every f execution
        for y_vertex in run.instances_of("y"):
            for f_vertex in run.instances_of("f"):
                assert labeled.reaches(y_vertex, f_vertex)
                assert not labeled.reaches(f_vertex, y_vertex)
        # and the fork copies themselves stay mutually unreachable
        f_copies = run.instances_of("f")
        assert len(f_copies) == 3
        for first in f_copies:
            for second in f_copies:
                if first != second:
                    assert not labeled.reaches(first, second)

    def test_deep_nesting_depth(self):
        spec = deep_nesting_chain()
        assert spec.hierarchy.depth == 5
        assert spec.hierarchy.node("F2").parent == "L2"
        assert spec.hierarchy.node("L2").parent == "F1"
        assert spec.hierarchy.node("F1").parent == "L1"
