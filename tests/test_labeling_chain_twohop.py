"""Unit tests for the chain-decomposition and 2-hop labeling schemes."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import LabelingError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import simple_paths_exist_matrix
from repro.labeling.chain import ChainIndex
from repro.labeling.registry import available_schemes, build_index
from repro.labeling.twohop import TwoHopIndex


@pytest.fixture()
def dag() -> DiGraph:
    return DiGraph(
        edges=[
            ("s", "a"), ("s", "b"), ("a", "c"), ("b", "c"),
            ("c", "t"), ("s", "t"), ("b", "t"), ("a", "d"), ("d", "t"),
        ]
    )


def random_dag(seed: int, size: int = 14) -> DiGraph:
    rng = random.Random(seed)
    vertices = [f"v{i}" for i in range(size)]
    graph = DiGraph(vertices=vertices)
    for j in range(1, size):
        for i in rng.sample(range(j), k=min(j, rng.randint(0, 3))):
            graph.add_edge(vertices[i], vertices[j])
    return graph


def assert_matches_oracle(index, graph: DiGraph) -> None:
    oracle = simple_paths_exist_matrix(graph)
    for (u, v), expected in oracle.items():
        assert index.reaches(u, v) == expected, f"{index.scheme_name}: {u} -> {v}"


class TestChainIndex:
    def test_correctness_on_dag(self, dag):
        assert_matches_oracle(ChainIndex.build(dag), dag)

    def test_correctness_on_paper_spec(self, paper_spec):
        assert_matches_oracle(ChainIndex.build(paper_spec.graph), paper_spec.graph)

    @pytest.mark.parametrize("seed", range(8))
    def test_correctness_on_random_dags(self, seed):
        graph = random_dag(seed)
        assert_matches_oracle(ChainIndex.build(graph), graph)

    def test_chain_count_bounded_by_vertices(self, dag):
        index = ChainIndex.build(dag)
        assert 1 <= index.chain_count <= dag.vertex_count

    def test_chain_of_path_graph_is_single(self):
        path = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "d")])
        index = ChainIndex.build(path)
        assert index.chain_count == 1
        label = index.label_of("a")
        assert label.chain == 0 and label.position == 0

    def test_label_bits_positive(self, dag):
        index = ChainIndex.build(dag)
        assert index.label_length_bits("s") > 0
        assert index.max_label_length_bits() >= index.label_length_bits("t")

    def test_unknown_vertex_raises(self, dag):
        with pytest.raises(LabelingError):
            ChainIndex.build(dag).label_of("nope")

    def test_cycle_rejected(self):
        with pytest.raises(LabelingError):
            ChainIndex.build(DiGraph(edges=[("a", "b"), ("b", "a")]))

    def test_earliest_on_unreachable_chain(self, dag):
        index = ChainIndex.build(dag)
        label_t = index.label_of("t")
        # the sink reaches only its own chain suffix
        assert label_t.earliest_on(label_t.chain) == label_t.position
        missing = max(c for c, _ in index.label_of("s").reach) + 1
        assert label_t.earliest_on(missing) == -1


class TestTwoHopIndex:
    def test_correctness_on_dag(self, dag):
        assert_matches_oracle(TwoHopIndex.build(dag), dag)

    def test_correctness_on_paper_spec(self, paper_spec):
        assert_matches_oracle(TwoHopIndex.build(paper_spec.graph), paper_spec.graph)

    @pytest.mark.parametrize("seed", range(8))
    def test_correctness_on_random_dags(self, seed):
        graph = random_dag(seed, size=12)
        assert_matches_oracle(TwoHopIndex.build(graph), graph)

    def test_label_bits_positive(self, dag):
        index = TwoHopIndex.build(dag)
        assert index.label_length_bits("s") > 0
        assert index.average_hops() >= 1

    def test_unknown_vertex_raises(self, dag):
        with pytest.raises(LabelingError):
            TwoHopIndex.build(dag).label_of("nope")

    def test_cycle_rejected(self):
        with pytest.raises(LabelingError):
            TwoHopIndex.build(DiGraph(edges=[("a", "b"), ("b", "a")]))

    def test_hop_sets_are_frozen(self, dag):
        label = TwoHopIndex.build(dag).label_of("a")
        assert isinstance(label.out_hops, frozenset)
        assert isinstance(label.in_hops, frozenset)


class TestRegistryIntegration:
    def test_new_schemes_registered(self):
        names = available_schemes()
        assert "chain" in names and "2-hop" in names

    @pytest.mark.parametrize("scheme", ["chain", "2-hop"])
    def test_buildable_via_registry(self, scheme, paper_spec):
        index = build_index(scheme, paper_spec.graph)
        assert index.reaches("a", "h")
        assert not index.reaches("h", "a")

    @pytest.mark.parametrize("scheme", ["chain", "2-hop"])
    def test_usable_as_skeleton_scheme(self, scheme, paper_spec, paper_run):
        from repro.graphs.traversal import all_pairs_reachability
        from repro.skeleton.skl import SkeletonLabeler

        labeled = SkeletonLabeler(paper_spec, scheme).label_run(paper_run)
        reach = all_pairs_reachability(paper_run.graph)
        for source in paper_run.vertices():
            for target in paper_run.vertices():
                assert labeled.reaches(source, target) == (target in reach[source])
