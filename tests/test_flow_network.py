"""Unit tests for acyclic flow networks and composition operations."""

from __future__ import annotations

import pytest

from repro.exceptions import FlowNetworkError
from repro.graphs.digraph import DiGraph
from repro.graphs.flow_network import (
    every_vertex_on_source_sink_path,
    find_sink,
    find_source,
    internal_vertices,
    is_acyclic_flow_network,
    parallel_composition,
    replace_subgraph,
    serial_composition,
    validate_flow_network,
)


@pytest.fixture()
def diamond() -> DiGraph:
    return DiGraph(edges=[("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")])


class TestValidation:
    def test_find_source_and_sink(self, diamond: DiGraph):
        assert find_source(diamond) == "s"
        assert find_sink(diamond) == "t"

    def test_internal_vertices(self, diamond: DiGraph):
        assert internal_vertices(diamond) == {"a", "b"}

    def test_validate_returns_terminals(self, diamond: DiGraph):
        assert validate_flow_network(diamond) == ("s", "t")

    def test_is_acyclic_flow_network_true(self, diamond: DiGraph):
        assert is_acyclic_flow_network(diamond)

    def test_empty_graph_rejected(self):
        with pytest.raises(FlowNetworkError):
            validate_flow_network(DiGraph())

    def test_two_sources_rejected(self):
        graph = DiGraph(edges=[("s1", "t"), ("s2", "t")])
        with pytest.raises(FlowNetworkError):
            validate_flow_network(graph)

    def test_two_sinks_rejected(self):
        graph = DiGraph(edges=[("s", "t1"), ("s", "t2")])
        with pytest.raises(FlowNetworkError):
            validate_flow_network(graph)

    def test_cycle_rejected(self):
        graph = DiGraph(edges=[("s", "a"), ("a", "b"), ("b", "a"), ("a", "t")])
        with pytest.raises(FlowNetworkError):
            validate_flow_network(graph)

    def test_isolated_vertex_rejected(self):
        graph = DiGraph(edges=[("s", "t")])
        graph.add_vertex("floating")
        assert not is_acyclic_flow_network(graph)

    def test_single_vertex_rejected(self):
        graph = DiGraph(vertices=["only"])
        with pytest.raises(FlowNetworkError):
            validate_flow_network(graph)

    def test_every_vertex_on_path(self, diamond: DiGraph):
        assert every_vertex_on_source_sink_path(diamond)


class TestCompositions:
    def test_parallel_composition_merges_terminals(self):
        first = DiGraph(edges=[("s", "a"), ("a", "t")])
        second = DiGraph(edges=[("s2", "b"), ("b", "t2")])
        combined = parallel_composition([first, second])
        assert find_source(combined) == "s"
        assert find_sink(combined) == "t"
        assert combined.has_edge("s", "b")
        assert combined.has_edge("b", "t")
        assert combined.vertex_count == 4  # s, t, a, b

    def test_parallel_composition_empty_rejected(self):
        with pytest.raises(FlowNetworkError):
            parallel_composition([])

    def test_parallel_composition_with_rename(self):
        network = DiGraph(edges=[("s", "a"), ("a", "t")])
        combined = parallel_composition(
            [network, network], rename=lambda i, v: f"{v}_{i}"
        )
        assert combined.vertex_count == 4  # shared terminals + a_0 + a_1
        assert combined.has_edge("s_0", "a_1")

    def test_serial_composition_adds_bridge_edge(self):
        first = DiGraph(edges=[("s1", "t1")])
        second = DiGraph(edges=[("s2", "t2")])
        combined = serial_composition([first, second])
        assert combined.has_edge("t1", "s2")
        assert find_source(combined) == "s1"
        assert find_sink(combined) == "t2"

    def test_serial_composition_three_networks(self):
        nets = [DiGraph(edges=[(f"s{i}", f"t{i}")]) for i in range(3)]
        combined = serial_composition(nets)
        assert combined.edge_count == 5  # 3 originals + 2 bridges

    def test_serial_composition_empty_rejected(self):
        with pytest.raises(FlowNetworkError):
            serial_composition([])


class TestReplacement:
    def test_replace_inner_subgraph(self):
        graph = DiGraph(edges=[("s", "x"), ("x", "y"), ("y", "t")])
        replacement = DiGraph(edges=[("p", "q"), ("q", "r")])
        result = replace_subgraph(
            graph,
            old_vertices={"x", "y"},
            old_source="x",
            old_sink="y",
            replacement=replacement,
            replacement_source="p",
            replacement_sink="r",
        )
        assert result.has_edge("s", "x")
        assert result.has_edge("x", "q")
        assert result.has_edge("q", "y")
        assert result.has_edge("y", "t")

    def test_replace_requires_terminals_in_old_vertices(self):
        graph = DiGraph(edges=[("s", "x"), ("x", "t")])
        with pytest.raises(FlowNetworkError):
            replace_subgraph(
                graph, {"x"}, "s", "x", DiGraph(edges=[("p", "q")]), "p", "q"
            )

    def test_replace_rejects_non_self_contained(self):
        graph = DiGraph(edges=[("s", "x"), ("x", "y"), ("y", "t"), ("x", "t")])
        # {x, y} is not self-contained here because x also feeds t directly,
        # but x is the claimed source so that edge is fine; instead make an
        # internal vertex leak: y -> t is the sink's outgoing edge, so use a
        # different subgraph whose internal vertex has an outside edge.
        graph2 = DiGraph(edges=[("s", "x"), ("x", "y"), ("y", "z"), ("z", "t"), ("y", "t")])
        with pytest.raises(FlowNetworkError):
            replace_subgraph(
                graph2,
                old_vertices={"x", "y", "z"},
                old_source="x",
                old_sink="z",
                replacement=DiGraph(edges=[("p", "q")]),
                replacement_source="p",
                replacement_sink="q",
            )

    def test_replace_rejects_vertex_collision(self):
        graph = DiGraph(edges=[("s", "x"), ("x", "y"), ("y", "t")])
        # the replacement's internal vertex "s" collides with the surrounding graph
        replacement = DiGraph(edges=[("p", "s"), ("s", "q")])
        with pytest.raises(FlowNetworkError):
            replace_subgraph(
                graph, {"x", "y"}, "x", "y", replacement, "p", "q"
            )
