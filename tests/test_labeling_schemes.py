"""Unit tests for the TCM, BFS/DFS, interval and tree-cover labeling schemes."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError, LabelingError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import simple_paths_exist_matrix
from repro.labeling.bfs import BFSIndex, DFSIndex
from repro.labeling.interval import IntervalTreeIndex, compute_tree_intervals
from repro.labeling.registry import available_schemes, build_index, get_scheme, register_scheme
from repro.labeling.tcm import TCMIndex
from repro.labeling.tree_cover import TreeCoverIndex, compress_intervals
from repro.labeling.base import ReachabilityIndex


@pytest.fixture()
def dag() -> DiGraph:
    return DiGraph(
        edges=[
            ("s", "a"), ("s", "b"), ("a", "c"), ("b", "c"),
            ("c", "t"), ("s", "t"), ("b", "t"),
        ]
    )


@pytest.fixture()
def tree() -> DiGraph:
    return DiGraph(edges=[("r", "a"), ("r", "b"), ("a", "c"), ("a", "d"), ("b", "e")])


def assert_matches_oracle(index: ReachabilityIndex, graph: DiGraph) -> None:
    oracle = simple_paths_exist_matrix(graph)
    for (u, v), expected in oracle.items():
        assert index.reaches(u, v) == expected, f"{index.scheme_name}: {u} -> {v}"


class TestTCM:
    def test_correctness(self, dag):
        assert_matches_oracle(TCMIndex.build(dag), dag)

    def test_label_length_is_n(self, dag):
        index = TCMIndex.build(dag)
        assert index.label_length_bits("s") == dag.vertex_count
        assert index.max_label_length_bits() == dag.vertex_count

    def test_labels_are_comparable_without_graph(self, dag):
        index = TCMIndex.build(dag)
        label_s, label_t = index.label_of("s"), index.label_of("t")
        assert index.reaches_labels(label_s, label_t)
        assert not index.reaches_labels(label_t, label_s)

    def test_unknown_vertex_raises(self, dag):
        with pytest.raises(LabelingError):
            TCMIndex.build(dag).label_of("nope")

    def test_total_label_bits(self, dag):
        index = TCMIndex.build(dag)
        assert index.total_label_bits() == dag.vertex_count ** 2


class TestTraversalSchemes:
    def test_bfs_correctness(self, dag):
        assert_matches_oracle(BFSIndex.build(dag), dag)

    def test_dfs_correctness(self, dag):
        assert_matches_oracle(DFSIndex.build(dag), dag)

    def test_zero_label_length(self, dag):
        index = BFSIndex.build(dag)
        assert index.label_length_bits("s") == 0
        assert index.max_label_length_bits() == 0
        assert index.average_label_length_bits() == 0.0

    def test_label_is_vertex_identity(self, dag):
        assert BFSIndex.build(dag).label_of("a") == "a"

    def test_unknown_vertex_raises(self, dag):
        with pytest.raises(LabelingError):
            DFSIndex.build(dag).label_of("nope")

    def test_batch_path_sees_graph_mutations_like_the_per_pair_path(self):
        from repro.graphs.digraph import DiGraph

        graph = DiGraph(edges=[("a", "b"), ("c", "d")])
        index = BFSIndex.build(graph)
        label_pair = [(index.label_of("b"), index.label_of("c"))]
        assert index.reaches("b", "c") is False
        assert index.reaches_many(label_pair) == [False]
        # traversal schemes store no index, so answers track the live graph
        graph.add_edge("b", "c")
        assert index.reaches("b", "c") is True
        assert index.reaches_many(label_pair) == [True]


class TestIntervalScheme:
    def test_correctness_on_tree(self, tree):
        assert_matches_oracle(IntervalTreeIndex.build(tree), tree)

    def test_label_length_two_log_n(self, tree):
        index = IntervalTreeIndex.build(tree)
        expected = 2 * (tree.vertex_count).bit_length()
        assert index.label_length_bits("r") == expected

    def test_forest_supported(self):
        forest = DiGraph(edges=[("r1", "a"), ("r2", "b")])
        index = IntervalTreeIndex.build(forest)
        assert index.reaches("r1", "a")
        assert not index.reaches("r1", "b")

    def test_non_tree_rejected(self, dag):
        with pytest.raises(GraphError):
            IntervalTreeIndex.build(dag)

    def test_cycle_rejected(self):
        with pytest.raises(GraphError):
            compute_tree_intervals(DiGraph(edges=[("a", "b"), ("b", "a")]))

    def test_interval_nesting(self, tree):
        labels = compute_tree_intervals(tree)
        root, child = labels["r"], labels["a"]
        assert root.low <= child.low and child.post <= root.post


class TestTreeCover:
    def test_correctness_on_dag(self, dag):
        assert_matches_oracle(TreeCoverIndex.build(dag), dag)

    def test_correctness_on_tree(self, tree):
        assert_matches_oracle(TreeCoverIndex.build(tree), tree)

    def test_correctness_on_paper_spec(self, paper_spec):
        assert_matches_oracle(TreeCoverIndex.build(paper_spec.graph), paper_spec.graph)

    def test_cycle_rejected(self):
        with pytest.raises(LabelingError):
            TreeCoverIndex.build(DiGraph(edges=[("a", "b"), ("b", "a")]))

    def test_label_bits_positive(self, dag):
        index = TreeCoverIndex.build(dag)
        assert index.label_length_bits("s") > 0
        assert index.max_intervals() >= 1

    def test_compress_intervals_merges_overlaps(self):
        assert compress_intervals([(1, 3), (2, 5), (7, 8)]) == ((1, 5), (7, 8))

    def test_compress_intervals_merges_adjacent(self):
        assert compress_intervals([(1, 2), (3, 4)]) == ((1, 4),)

    def test_compress_intervals_drops_contained(self):
        assert compress_intervals([(1, 10), (2, 3)]) == ((1, 10),)

    def test_compress_intervals_empty(self):
        assert compress_intervals([]) == ()


class TestRegistry:
    def test_builtin_schemes_present(self):
        names = available_schemes()
        for expected in ("tcm", "bfs", "dfs", "interval", "tree-cover"):
            assert expected in names

    def test_get_scheme_case_insensitive(self):
        assert get_scheme("TCM") is TCMIndex

    def test_unknown_scheme_raises(self):
        with pytest.raises(LabelingError):
            get_scheme("quantum")

    def test_build_index(self, dag):
        index = build_index("tcm", dag)
        assert isinstance(index, TCMIndex)

    def test_register_custom_scheme(self, dag):
        class CustomIndex(BFSIndex):
            scheme_name = "custom"

        register_scheme("custom", CustomIndex)
        assert get_scheme("custom") is CustomIndex
        assert build_index("custom", dag).reaches("s", "t")

    def test_register_non_index_rejected(self):
        with pytest.raises(LabelingError):
            register_scheme("bogus", dict)

    def test_every_registered_scheme_is_correct_on_spec(self, paper_spec):
        for name in available_schemes():
            if name == "interval":
                continue  # requires a tree; the spec graph is a DAG
            index = build_index(name, paper_spec.graph)
            assert_matches_oracle(index, paper_spec.graph)
