"""Tests for data provenance: data flows, data labels and dependency queries."""

from __future__ import annotations

import pytest

from repro.exceptions import RunConformanceError
from repro.provenance.data import DataFlow, DataItem, generate_dataflow
from repro.provenance.labels import DataLabel, data_label_bits
from repro.provenance.queries import ProvenanceIndex
from repro.workflow.run import RunVertex


@pytest.fixture()
def paper_dataflow(paper_run) -> DataFlow:
    """The data items of Figure 11 (x1 .. x8 on the F1 side of the run)."""
    flow = DataFlow(run=paper_run)
    flow.attach(RunVertex("a", 1), RunVertex("b", 1), ["x1", "x2"])
    flow.attach(RunVertex("a", 1), RunVertex("b", 3), ["x1", "x3"])
    flow.attach(RunVertex("b", 1), RunVertex("c", 1), ["x4", "x5"])
    flow.attach(RunVertex("c", 3), RunVertex("h", 1), ["x6", "x7", "x8"])
    return flow


@pytest.fixture()
def paper_provenance(paper_labeled_run, paper_dataflow) -> ProvenanceIndex:
    return ProvenanceIndex(paper_labeled_run, paper_dataflow)


class TestDataFlow:
    def test_items_registered(self, paper_dataflow):
        assert {str(i) for i in paper_dataflow.items()} >= {"x1", "x2", "x4", "x6"}
        assert len(paper_dataflow) == 8

    def test_output_of(self, paper_dataflow):
        assert paper_dataflow.output_of("x1") == RunVertex("a", 1)
        assert paper_dataflow.output_of("x6") == RunVertex("c", 3)

    def test_inputs_of_shared_item(self, paper_dataflow):
        assert paper_dataflow.inputs_of("x1") == {RunVertex("b", 1), RunVertex("b", 3)}

    def test_inputs_of_private_item(self, paper_dataflow):
        assert paper_dataflow.inputs_of("x4") == {RunVertex("c", 1)}

    def test_data_on_edge(self, paper_dataflow):
        items = paper_dataflow.data_on(RunVertex("a", 1), RunVertex("b", 1))
        assert [str(i) for i in items] == ["x1", "x2"]
        assert paper_dataflow.data_on(RunVertex("b", 1), RunVertex("b", 2)) == ()

    def test_contains(self, paper_dataflow):
        assert "x1" in paper_dataflow
        assert DataItem("x1") in paper_dataflow
        assert "zzz" not in paper_dataflow

    def test_max_fanout(self, paper_dataflow):
        assert paper_dataflow.max_fanout == 2

    def test_total_assignments(self, paper_dataflow):
        assert paper_dataflow.total_assignments() == 9

    def test_unknown_item_raises(self, paper_dataflow):
        with pytest.raises(RunConformanceError):
            paper_dataflow.output_of("zzz")
        with pytest.raises(RunConformanceError):
            paper_dataflow.inputs_of("zzz")

    def test_attach_to_missing_edge_rejected(self, paper_run):
        flow = DataFlow(run=paper_run)
        with pytest.raises(RunConformanceError):
            flow.attach(RunVertex("b", 1), RunVertex("b", 3), ["y1"])

    def test_duplicate_producer_rejected(self, paper_run):
        flow = DataFlow(run=paper_run)
        flow.attach(RunVertex("a", 1), RunVertex("b", 1), ["y1"])
        with pytest.raises(RunConformanceError):
            flow.attach(RunVertex("b", 1), RunVertex("c", 1), ["y1"])

    def test_same_producer_multiple_consumers_allowed(self, paper_run):
        flow = DataFlow(run=paper_run)
        flow.attach(RunVertex("a", 1), RunVertex("b", 1), ["y1"])
        flow.attach(RunVertex("a", 1), RunVertex("b", 3), ["y1"])
        assert flow.inputs_of("y1") == {RunVertex("b", 1), RunVertex("b", 3)}


class TestGeneratedDataflow:
    def test_every_edge_gets_items(self, paper_run, rng):
        flow = generate_dataflow(paper_run, items_per_edge=2, rng=rng)
        for edge in paper_run.graph.iter_edges():
            assert len(flow.data_on(*edge)) >= 2

    def test_single_writer_invariant(self, synthetic_run, rng):
        flow = generate_dataflow(synthetic_run.run, rng=rng)
        for item in flow.items():
            producer = flow.output_of(item)
            for consumer in flow.inputs_of(item):
                assert synthetic_run.run.graph.has_edge(producer, consumer)

    def test_shared_fraction_zero_gives_fanout_one(self, paper_run, rng):
        flow = generate_dataflow(paper_run, shared_fraction=0.0, rng=rng)
        assert flow.max_fanout == 1


class TestDataLabels:
    def test_label_structure(self, paper_provenance):
        label = paper_provenance.data_label("x1")
        assert isinstance(label, DataLabel)
        assert label.fanout == 2

    def test_data_label_bits(self):
        assert data_label_bits(module_label_bits=20, fanout=3) == 80

    def test_items_listing(self, paper_provenance):
        assert DataItem("x6") in paper_provenance.items()


class TestDependencyQueries:
    def test_example10_x6_depends_on_x1(self, paper_provenance):
        """x1 is read by b1 and b3; b3 reaches c3 which writes x6."""
        assert paper_provenance.data_depends_on_data("x6", "x1")

    def test_x8_does_not_depend_on_x2(self, paper_provenance):
        """x2 is read only by b1 which cannot reach c3 (parallel fork copies)."""
        assert not paper_provenance.data_depends_on_data("x6", "x2")

    def test_query1_x8_vs_x1_like(self, paper_provenance):
        """Introduction query (2): x4 (output of b1 edge) depends on x2 (input of b1)."""
        assert paper_provenance.data_depends_on_data("x4", "x2")

    def test_data_depends_on_module(self, paper_provenance):
        assert paper_provenance.data_depends_on_module("x6", RunVertex("a", 1))
        assert paper_provenance.data_depends_on_module("x6", RunVertex("b", 3))
        assert not paper_provenance.data_depends_on_module("x6", RunVertex("b", 1))

    def test_module_depends_on_data(self, paper_provenance):
        assert paper_provenance.module_depends_on_data(RunVertex("h", 1), "x1")
        assert paper_provenance.module_depends_on_data(RunVertex("b", 1), "x1")
        assert not paper_provenance.module_depends_on_data(RunVertex("d", 1), "x1")

    def test_module_depends_on_module(self, paper_provenance):
        assert paper_provenance.module_depends_on_module(
            RunVertex("h", 1), RunVertex("a", 1)
        )
        assert not paper_provenance.module_depends_on_module(
            RunVertex("a", 1), RunVertex("h", 1)
        )

    def test_downstream_items(self, paper_provenance):
        downstream = {str(i) for i in paper_provenance.downstream_items("x1")}
        assert "x6" in downstream
        assert "x4" in downstream
        assert "x2" not in downstream

    def test_upstream_items(self, paper_provenance):
        upstream = {str(i) for i in paper_provenance.upstream_items("x6")}
        assert "x1" in upstream and "x3" in upstream
        assert "x4" not in upstream

    def test_max_data_label_fanout(self, paper_provenance):
        assert paper_provenance.max_data_label_fanout() == 2

    def test_queries_work_with_generated_dataflow(self, paper_labeled_run, paper_run, rng):
        flow = generate_dataflow(paper_run, rng=rng)
        index = ProvenanceIndex(paper_labeled_run, flow)
        items = index.items()
        # spot-check a handful of items for internal consistency with module reachability
        for item in items[:10]:
            producer = flow.output_of(item)
            assert index.data_depends_on_module(item, producer) or producer == paper_run.source
