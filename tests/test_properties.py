"""Property-based tests (hypothesis) for the core invariants of the paper.

These properties are checked on randomly drawn specifications and runs:

* Lemma 4.2 — the execution plan has at most ``4 |E(R)|`` nodes;
* Lemma 4.5 — the three-order encoding classifies least common ancestors;
* Lemma 4.6 — the skeleton predicate agrees with true reachability;
* Lemma 4.7 — label lengths stay within ``3 log n+T + log nG``;
* structural invariants of the generators (well-formed runs, exact synthetic
  parameters, serialization round trips).
"""

from __future__ import annotations

import math
import random

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.exceptions import DatasetError
from repro.graphs.digraph import DiGraph
from repro.graphs.transitive_closure import transitive_closure
from repro.graphs.traversal import all_pairs_reachability, is_dag, topological_sort
from repro.labeling.tree_cover import compress_intervals
from repro.skeleton.construct import construct_plan
from repro.skeleton.labels import context_bits, run_label_bits
from repro.skeleton.orders import encode_contexts
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size
from repro.workflow.serialization import (
    run_from_json,
    run_to_json,
    specification_from_xml,
    specification_to_xml,
)

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def random_dags(draw) -> DiGraph:
    """Random DAGs built from a topological vertex order."""
    size = draw(st.integers(min_value=1, max_value=12))
    vertices = [f"v{i}" for i in range(size)]
    graph = DiGraph(vertices=vertices)
    for j in range(1, size):
        parent_count = draw(st.integers(min_value=0, max_value=min(3, j)))
        parents = draw(
            st.lists(
                st.integers(min_value=0, max_value=j - 1),
                min_size=parent_count,
                max_size=parent_count,
                unique=True,
            )
        )
        for i in parents:
            graph.add_edge(vertices[i], vertices[j])
    return graph


@st.composite
def specifications(draw):
    """Random well-nested specifications via the synthetic generator."""
    hierarchy_size = draw(st.integers(min_value=1, max_value=6))
    if hierarchy_size == 1:
        depth = 1
    else:
        depth = draw(st.integers(min_value=2, max_value=min(4, hierarchy_size)))
    n_modules = draw(st.integers(min_value=12, max_value=40))
    extra_edges = draw(st.integers(min_value=0, max_value=n_modules // 2))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    fork_fraction = draw(st.sampled_from([0.0, 0.3, 0.5, 0.7, 1.0]))
    config = SyntheticSpecConfig(
        n_modules=n_modules,
        n_edges=n_modules - 1 + extra_edges,
        hierarchy_size=hierarchy_size,
        hierarchy_depth=depth,
        fork_fraction=fork_fraction,
        seed=seed,
        name=f"hypo-{seed}",
    )
    try:
        return generate_specification(config)
    except DatasetError:
        assume(False)


@st.composite
def specification_and_run(draw):
    spec = draw(specifications())
    if spec.hierarchy.size == 1:
        # no forks or loops: the only run is the specification itself
        target = spec.vertex_count
    else:
        target = draw(
            st.integers(min_value=spec.vertex_count, max_value=6 * spec.vertex_count)
        )
    seed = draw(st.integers(min_value=0, max_value=10_000))
    generated = generate_run_with_size(spec, target, seed=seed)
    return spec, generated


# ----------------------------------------------------------------------
# graph substrate properties
# ----------------------------------------------------------------------
@given(random_dags())
@SLOW
def test_random_dags_are_acyclic_and_sortable(graph: DiGraph):
    assert is_dag(graph)
    order = topological_sort(graph)
    position = {v: i for i, v in enumerate(order)}
    assert all(position[t] < position[h] for t, h in graph.iter_edges())


@given(random_dags())
@SLOW
def test_transitive_closure_matches_traversal(graph: DiGraph):
    closure = transitive_closure(graph)
    reach = all_pairs_reachability(graph)
    for u in graph.vertices():
        for v in graph.vertices():
            assert closure.reaches(u, v) == (v in reach[u])


@given(random_dags())
@SLOW
def test_digraph_dict_round_trip(graph: DiGraph):
    assert DiGraph.from_dict(graph.to_dict()) == graph


@given(
    st.lists(
        st.tuples(st.integers(0, 60), st.integers(0, 30)).map(
            lambda pair: (pair[0], pair[0] + pair[1])
        ),
        max_size=12,
    )
)
def test_compress_intervals_preserves_membership(intervals):
    compressed = compress_intervals(intervals)
    covered = {p for low, high in intervals for p in range(low, high + 1)}
    compressed_points = {p for low, high in compressed for p in range(low, high + 1)}
    assert covered <= compressed_points
    # disjoint and sorted with gaps of at least one
    for (low1, high1), (low2, high2) in zip(compressed, compressed[1:]):
        assert high1 + 1 < low2


@given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=0, max_value=128))
def test_label_bit_accounting_monotone(nonempty, skeleton_bits):
    assert context_bits(nonempty) >= 1
    assert run_label_bits(nonempty, skeleton_bits) == 3 * context_bits(nonempty) + skeleton_bits
    assert context_bits(nonempty + 1) >= context_bits(nonempty)


# ----------------------------------------------------------------------
# generator properties
# ----------------------------------------------------------------------
@given(specifications())
@SLOW
def test_synthetic_specifications_hit_exact_parameters(spec):
    # the generator itself asserts exactness; re-check the model invariants here
    assert spec.graph.has_vertex(spec.source) and spec.graph.has_vertex(spec.sink)
    for region in spec.regions.values():
        assert region.dom_set
        assert region.edges <= set(spec.graph.iter_edges())


@given(specification_and_run())
@SLOW
def test_generated_runs_are_well_formed(spec_and_run):
    spec, generated = spec_and_run
    run = generated.run
    assert is_dag(run.graph)
    assert run.source.module == spec.source
    assert run.sink.module == spec.sink
    assert set(generated.context) == set(run.vertices())
    assert run.vertex_count >= spec.vertex_count


@given(specification_and_run())
@SLOW
def test_plan_size_bound_lemma_4_2(spec_and_run):
    spec, generated = spec_and_run
    result = construct_plan(spec, generated.run)
    assert len(result.plan) <= 4 * generated.run.edge_count


@given(specification_and_run())
@SLOW
def test_constructed_plan_matches_generator_plan(spec_and_run):
    spec, generated = spec_and_run
    result = construct_plan(spec, generated.run)
    assert result.plan.signature() == generated.plan.signature()


# ----------------------------------------------------------------------
# labeling properties (the main theorem)
# ----------------------------------------------------------------------
@given(specification_and_run(), st.integers(min_value=0, max_value=10_000))
@SLOW
def test_skeleton_labeling_matches_reachability_lemma_4_6(spec_and_run, query_seed):
    spec, generated = spec_and_run
    labeler = SkeletonLabeler(spec, "tcm")
    labeled = labeler.label_run(generated.run)
    reach = all_pairs_reachability(generated.run.graph)
    vertices = generated.run.vertices()
    rng = random.Random(query_seed)
    for _ in range(150):
        source, target = rng.choice(vertices), rng.choice(vertices)
        assert labeled.reaches(source, target) == (target in reach[source])


@given(specification_and_run())
@SLOW
def test_label_length_bound_lemma_4_7(spec_and_run):
    spec, generated = spec_and_run
    labeled = SkeletonLabeler(spec, "bfs").label_run(generated.run)
    n_plus = labeled.nonempty_plus_count
    bound = 3 * max(1, math.ceil(math.log2(max(2, n_plus)))) + math.ceil(
        math.log2(max(2, spec.vertex_count))
    )
    assert labeled.max_label_length_bits() <= bound
    assert n_plus <= generated.run.vertex_count


@given(specification_and_run())
@SLOW
def test_three_orders_are_permutations(spec_and_run):
    spec, generated = spec_and_run
    result = construct_plan(spec, generated.run)
    encoding = encode_contexts(result.plan, result.context)
    count = encoding.nonempty_count
    for coordinate in range(3):
        assert sorted(p[coordinate] for p in encoding.positions.values()) == list(
            range(1, count + 1)
        )


# ----------------------------------------------------------------------
# online labeling properties
# ----------------------------------------------------------------------
@given(specification_and_run(), st.data())
@SLOW
def test_online_prefix_queries_match_final_run(spec_and_run, data):
    """Replaying any predecessor-closed prefix answers queries like the final run."""
    from repro.graphs.traversal import topological_sort
    from repro.skeleton.online import OnlineRun
    from repro.skeleton.skl import SkeletonLabeler

    spec, generated = spec_and_run
    labeler = SkeletonLabeler(spec, "tcm")
    batch = labeler.label_run(
        generated.run, plan=generated.plan, context=generated.context
    )

    online = OnlineRun(labeler, validate_edges=False, name="property-replay")
    scope_of = {generated.plan.root_id: online.root_scope}
    for node in generated.plan.iter_preorder():
        if node.node_id == generated.plan.root_id:
            continue
        if node.is_minus:
            scope_of[node.node_id] = scope_of[node.parent].begin_execution(node.region)
        else:
            scope_of[node.node_id] = scope_of[node.parent].new_copy()

    order = topological_sort(generated.run.graph)
    prefix_length = data.draw(
        st.integers(min_value=1, max_value=len(order)), label="prefix_length"
    )
    visible = order[:prefix_length]
    visible_set = set(visible)
    for vertex in visible:
        scope_of[generated.context[vertex]].execute(vertex.module, instance=vertex.instance)
    for tail, head in generated.run.graph.iter_edges():
        if tail in visible_set and head in visible_set:
            online.connect(tail, head)

    rng = random.Random(prefix_length)
    for _ in range(60):
        source, target = rng.choice(visible), rng.choice(visible)
        assert online.reaches(source, target) == batch.reaches(source, target)


# ----------------------------------------------------------------------
# serialization properties
# ----------------------------------------------------------------------
@given(specifications())
@SLOW
def test_specification_xml_round_trip(spec):
    rebuilt = specification_from_xml(specification_to_xml(spec))
    assert rebuilt.graph == spec.graph
    assert set(rebuilt.regions) == set(spec.regions)
    assert rebuilt.hierarchy.size == spec.hierarchy.size


@given(specification_and_run())
@SLOW
def test_run_json_round_trip(spec_and_run):
    spec, generated = spec_and_run
    rebuilt = run_from_json(run_to_json(generated.run), spec)
    assert set(rebuilt.graph.iter_edges()) == set(generated.run.graph.iter_edges())
