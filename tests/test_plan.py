"""Unit tests for the ExecutionPlan tree structure."""

from __future__ import annotations

import pytest

from repro.exceptions import PlanConstructionError
from repro.workflow.plan import ExecutionPlan, PlanNodeKind


def build_small_plan() -> ExecutionPlan:
    """root G+ -> F- (F1) with two F+ copies; second copy holds an L- (L2) with one copy."""
    plan = ExecutionPlan()
    root = plan.add_root()
    fork_group = plan.add_node(PlanNodeKind.FORK_GROUP, "F1", parent=root)
    plan.add_node(PlanNodeKind.FORK_COPY, "F1", parent=fork_group)
    second_copy = plan.add_node(PlanNodeKind.FORK_COPY, "F1", parent=fork_group)
    loop_group = plan.add_node(PlanNodeKind.LOOP_GROUP, "L2", parent=second_copy)
    plan.add_node(PlanNodeKind.LOOP_COPY, "L2", parent=loop_group)
    return plan


class TestPlanNodeKind:
    def test_plus_minus_partition(self):
        plus = {k for k in PlanNodeKind if k.is_plus}
        minus = {k for k in PlanNodeKind if k.is_minus}
        assert plus == {PlanNodeKind.ROOT, PlanNodeKind.FORK_COPY, PlanNodeKind.LOOP_COPY}
        assert minus == {PlanNodeKind.FORK_GROUP, PlanNodeKind.LOOP_GROUP}
        assert not plus & minus


class TestConstruction:
    def test_root_creation(self):
        plan = ExecutionPlan()
        root = plan.add_root()
        assert plan.root_id == root
        assert plan.root.kind is PlanNodeKind.ROOT
        assert plan.root.region is None

    def test_double_root_rejected(self):
        plan = ExecutionPlan()
        plan.add_root()
        with pytest.raises(PlanConstructionError):
            plan.add_root()

    def test_root_required_for_access(self):
        plan = ExecutionPlan()
        with pytest.raises(PlanConstructionError):
            _ = plan.root_id

    def test_add_node_with_root_kind_rejected(self):
        plan = ExecutionPlan()
        plan.add_root()
        with pytest.raises(PlanConstructionError):
            plan.add_node(PlanNodeKind.ROOT, "F1")

    def test_orphan_attach(self):
        plan = ExecutionPlan()
        root = plan.add_root()
        orphan = plan.add_node(PlanNodeKind.FORK_GROUP, "F1")
        assert plan.node(orphan).parent is None
        plan.attach(orphan, root)
        assert plan.node(orphan).parent == root
        assert orphan in plan.root.children

    def test_double_attach_rejected(self):
        plan = ExecutionPlan()
        root = plan.add_root()
        child = plan.add_node(PlanNodeKind.FORK_GROUP, "F1", parent=root)
        with pytest.raises(PlanConstructionError):
            plan.attach(child, root)

    def test_unknown_node_rejected(self):
        plan = ExecutionPlan()
        plan.add_root()
        with pytest.raises(PlanConstructionError):
            plan.node(123)


class TestAccessors:
    def test_len_and_contains(self):
        plan = build_small_plan()
        assert len(plan) == 6
        assert plan.root_id in plan
        assert 999 not in plan

    def test_children_and_parent(self):
        plan = build_small_plan()
        fork_group = plan.children(plan.root_id)[0]
        assert fork_group.kind is PlanNodeKind.FORK_GROUP
        assert plan.parent(fork_group.node_id).node_id == plan.root_id
        assert plan.parent(plan.root_id) is None

    def test_plus_and_minus_nodes(self):
        plan = build_small_plan()
        assert len(plan.plus_nodes()) == 4
        assert len(plan.minus_nodes()) == 2

    def test_copies_and_groups_per_region(self):
        plan = build_small_plan()
        assert plan.copies_per_region() == {"F1": 2, "L2": 1}
        assert plan.groups_per_region() == {"F1": 1, "L2": 1}

    def test_depth(self):
        plan = build_small_plan()
        assert plan.depth() == 5  # G+ / F- / F+ / L- / L+


class TestTraversal:
    def test_preorder_parents_before_children(self):
        plan = build_small_plan()
        order = [n.node_id for n in plan.iter_preorder()]
        assert order[0] == plan.root_id
        position = {node_id: i for i, node_id in enumerate(order)}
        for node in plan.nodes():
            if node.parent is not None:
                assert position[node.parent] < position[node.node_id]

    def test_preorder_custom_child_order(self):
        plan = build_small_plan()
        default = [n.node_id for n in plan.iter_preorder()]
        reversed_order = [
            n.node_id
            for n in plan.iter_preorder(lambda node: list(reversed(node.children)))
        ]
        assert set(default) == set(reversed_order)

    def test_postorder_children_before_parents(self):
        plan = build_small_plan()
        order = [n.node_id for n in plan.iter_postorder()]
        assert order[-1] == plan.root_id
        position = {node_id: i for i, node_id in enumerate(order)}
        for node in plan.nodes():
            if node.parent is not None:
                assert position[node.node_id] < position[node.parent]

    def test_empty_plan_traversals(self):
        plan = ExecutionPlan()
        assert list(plan.iter_preorder()) == []
        assert list(plan.iter_postorder()) == []


class TestValidation:
    def test_valid_plan_passes(self):
        build_small_plan().validate()

    def test_unattached_node_rejected(self):
        plan = build_small_plan()
        plan.add_node(PlanNodeKind.FORK_GROUP, "F9")
        with pytest.raises(PlanConstructionError):
            plan.validate()

    def test_group_without_copies_rejected(self):
        plan = ExecutionPlan()
        root = plan.add_root()
        plan.add_node(PlanNodeKind.FORK_GROUP, "F1", parent=root)
        with pytest.raises(PlanConstructionError):
            plan.validate()

    def test_plus_node_with_plus_child_rejected(self):
        plan = ExecutionPlan()
        root = plan.add_root()
        plan.add_node(PlanNodeKind.FORK_COPY, "F1", parent=root)
        with pytest.raises(PlanConstructionError):
            plan.validate()

    def test_group_with_wrong_region_child_rejected(self):
        plan = ExecutionPlan()
        root = plan.add_root()
        group = plan.add_node(PlanNodeKind.FORK_GROUP, "F1", parent=root)
        plan.add_node(PlanNodeKind.FORK_COPY, "F2", parent=group)
        with pytest.raises(PlanConstructionError):
            plan.validate()

    def test_group_with_mixed_copy_kind_rejected(self):
        plan = ExecutionPlan()
        root = plan.add_root()
        group = plan.add_node(PlanNodeKind.FORK_GROUP, "F1", parent=root)
        plan.add_node(PlanNodeKind.LOOP_COPY, "F1", parent=group)
        with pytest.raises(PlanConstructionError):
            plan.validate()


class TestSignature:
    def test_signature_ignores_unordered_child_order(self):
        first = ExecutionPlan()
        root = first.add_root()
        group = first.add_node(PlanNodeKind.FORK_GROUP, "F1", parent=root)
        copy_a = first.add_node(PlanNodeKind.FORK_COPY, "F1", parent=group)
        copy_b = first.add_node(PlanNodeKind.FORK_COPY, "F1", parent=group)
        first.add_node(PlanNodeKind.LOOP_GROUP, "L1", parent=copy_a)
        nested = first.node(copy_a).children[0]
        first.add_node(PlanNodeKind.LOOP_COPY, "L1", parent=nested)

        second = ExecutionPlan()
        root2 = second.add_root()
        group2 = second.add_node(PlanNodeKind.FORK_GROUP, "F1", parent=root2)
        copy_c = second.add_node(PlanNodeKind.FORK_COPY, "F1", parent=group2)
        copy_d = second.add_node(PlanNodeKind.FORK_COPY, "F1", parent=group2)
        nested2 = second.add_node(PlanNodeKind.LOOP_GROUP, "L1", parent=copy_d)
        second.add_node(PlanNodeKind.LOOP_COPY, "L1", parent=nested2)

        assert first.signature() == second.signature()

    def test_signature_distinguishes_loop_copy_counts(self):
        base = build_small_plan()
        other = build_small_plan()
        loop_group = [n for n in other.nodes() if n.kind is PlanNodeKind.LOOP_GROUP][0]
        other.add_node(PlanNodeKind.LOOP_COPY, "L2", parent=loop_group.node_id)
        assert base.signature() != other.signature()

    def test_to_dict_lists_all_nodes(self):
        plan = build_small_plan()
        payload = plan.to_dict()
        assert payload["root"] == plan.root_id
        assert len(payload["nodes"]) == len(plan)
