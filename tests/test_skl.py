"""Tests for the skeleton-based labeling scheme (Algorithms 2 and 3)."""

from __future__ import annotations

import pytest

from repro.exceptions import LabelingError
from repro.labeling.tcm import TCMIndex
from repro.skeleton.labels import RunLabel, context_bits, run_label_bits
from repro.skeleton.skl import (
    QueryPath,
    SkeletonLabeler,
    classify_query,
    skeleton_predicate,
)
from repro.workflow.run import RunVertex


class TestPaperQueries:
    """The three provenance queries discussed in the introduction and Example 6."""

    def test_parallel_fork_copies_unreachable(self, paper_labeled_run):
        assert not paper_labeled_run.reaches(RunVertex("b", 1), RunVertex("c", 3))
        assert not paper_labeled_run.reaches(RunVertex("c", 3), RunVertex("b", 1))

    def test_successive_loop_iterations_reachable(self, paper_labeled_run):
        assert paper_labeled_run.reaches(RunVertex("c", 1), RunVertex("b", 2))
        assert not paper_labeled_run.reaches(RunVertex("b", 2), RunVertex("c", 1))

    def test_same_copy_falls_back_to_skeleton(self, paper_labeled_run):
        assert paper_labeled_run.reaches(RunVertex("b", 1), RunVertex("c", 1))
        assert not paper_labeled_run.reaches(RunVertex("c", 1), RunVertex("d", 1))

    def test_example6_f1_to_e2(self, paper_labeled_run):
        assert paper_labeled_run.reaches(RunVertex("f", 1), RunVertex("e", 2))
        assert not paper_labeled_run.reaches(RunVertex("e", 2), RunVertex("f", 1))

    def test_reflexive(self, paper_labeled_run):
        for vertex in paper_labeled_run.run.vertices():
            assert paper_labeled_run.reaches(vertex, vertex)

    def test_source_reaches_everything(self, paper_labeled_run, paper_run):
        source = paper_run.source
        for vertex in paper_run.vertices():
            assert paper_labeled_run.reaches(source, vertex)

    def test_everything_reaches_sink(self, paper_labeled_run, paper_run):
        sink = paper_run.sink
        for vertex in paper_run.vertices():
            assert paper_labeled_run.reaches(vertex, sink)


class TestLineageQueries:
    def test_downstream_of_source_is_everything(self, paper_labeled_run, paper_run):
        downstream = set(paper_labeled_run.downstream_of(paper_run.source))
        assert downstream == set(paper_run.vertices()) - {paper_run.source}

    def test_upstream_of_sink_is_everything(self, paper_labeled_run, paper_run):
        upstream = set(paper_labeled_run.upstream_of(paper_run.sink))
        assert upstream == set(paper_run.vertices()) - {paper_run.sink}

    def test_downstream_excludes_parallel_fork_copy(self, paper_labeled_run):
        downstream = set(paper_labeled_run.downstream_of(RunVertex("b", 1)))
        assert RunVertex("c", 1) in downstream
        assert RunVertex("b", 2) in downstream     # next loop iteration
        assert RunVertex("h", 1) in downstream
        assert RunVertex("c", 3) not in downstream  # parallel fork copy
        assert RunVertex("f", 1) not in downstream  # other branch

    def test_upstream_matches_graph_ancestors(self, paper_labeled_run, paper_run):
        from repro.graphs.traversal import ancestors

        for vertex in paper_run.vertices():
            expected = ancestors(paper_run.graph, vertex)
            assert set(paper_labeled_run.upstream_of(vertex)) == expected

    def test_downstream_matches_graph_descendants(self, paper_labeled_run, paper_run):
        from repro.graphs.traversal import descendants

        for vertex in paper_run.vertices():
            expected = descendants(paper_run.graph, vertex)
            assert set(paper_labeled_run.downstream_of(vertex)) == expected


class TestQueryClassification:
    def test_fork_query_path(self, paper_labeled_run):
        assert (
            paper_labeled_run.query_path(RunVertex("b", 1), RunVertex("c", 3))
            == QueryPath.FORK
        )

    def test_loop_query_path(self, paper_labeled_run):
        assert (
            paper_labeled_run.query_path(RunVertex("c", 1), RunVertex("b", 2))
            == QueryPath.LOOP
        )

    def test_skeleton_query_path(self, paper_labeled_run):
        assert (
            paper_labeled_run.query_path(RunVertex("b", 1), RunVertex("c", 1))
            == QueryPath.SKELETON
        )

    def test_classify_matches_predicate_semantics(self, paper_labeled_run):
        run = paper_labeled_run.run
        for source in run.vertices():
            for target in run.vertices():
                path = paper_labeled_run.query_path(source, target)
                if path == QueryPath.FORK:
                    assert not paper_labeled_run.reaches(source, target)

    def test_fast_path_fraction_bounds(self, paper_labeled_run):
        vertices = paper_labeled_run.run.vertices()
        pairs = [(u, v) for u in vertices[:6] for v in vertices[:6]]
        fraction = paper_labeled_run.fast_path_fraction(pairs)
        assert 0.0 <= fraction <= 1.0

    def test_fast_path_fraction_empty(self, paper_labeled_run):
        assert paper_labeled_run.fast_path_fraction([]) == 0.0


class TestLabels:
    def test_label_structure(self, paper_labeled_run):
        label = paper_labeled_run.label_of(RunVertex("b", 1))
        assert isinstance(label, RunLabel)
        assert label.context == (label.q1, label.q2, label.q3)
        assert all(coordinate >= 1 for coordinate in label.context)

    def test_labels_dictionary_copy(self, paper_labeled_run):
        labels = paper_labeled_run.labels()
        labels.clear()
        assert paper_labeled_run.labels()  # the internal mapping is unaffected

    def test_unknown_vertex_raises(self, paper_labeled_run):
        with pytest.raises(LabelingError):
            paper_labeled_run.label_of(RunVertex("b", 99))

    def test_same_context_same_coordinates(self, paper_labeled_run):
        first = paper_labeled_run.label_of(RunVertex("b", 1))
        second = paper_labeled_run.label_of(RunVertex("c", 1))
        assert first.context == second.context

    def test_coordinates_bounded_by_nonempty_count(self, paper_labeled_run):
        bound = paper_labeled_run.nonempty_plus_count
        for vertex in paper_labeled_run.run.vertices():
            label = paper_labeled_run.label_of(vertex)
            assert max(label.context) <= bound

    def test_skeleton_part_is_spec_label(self, paper_labeled_run, paper_spec):
        label = paper_labeled_run.label_of(RunVertex("f", 2))
        spec_label = paper_labeled_run.spec_index.label_of("f")
        assert label.skeleton == spec_label


class TestLabelLengths:
    def test_label_bits_helpers(self):
        assert context_bits(1) == 1
        assert context_bits(2) == 1
        assert context_bits(9) == 4
        assert run_label_bits(9, 3) == 3 * 4 + 3

    def test_measured_max_below_lemma_bound(self, paper_labeled_run):
        assert paper_labeled_run.max_label_length_bits() <= (
            paper_labeled_run.worst_case_label_bits()
        )

    def test_average_not_above_max(self, paper_labeled_run):
        assert (
            paper_labeled_run.average_label_length_bits()
            <= paper_labeled_run.max_label_length_bits()
        )

    def test_skeleton_reference_bits(self, paper_labeled_run, paper_spec):
        import math

        assert paper_labeled_run.skeleton_reference_bits == math.ceil(
            math.log2(paper_spec.vertex_count)
        )

    def test_label_length_grows_logarithmically(self, paper_spec, paper_labeler):
        from repro.workflow.execution import generate_run_with_size

        small = paper_labeler.label_run(generate_run_with_size(paper_spec, 100, seed=3).run)
        large = paper_labeler.label_run(generate_run_with_size(paper_spec, 1600, seed=3).run)
        assert large.max_label_length_bits() > small.max_label_length_bits()
        # 16x more vertices must cost far less than 16x more label bits
        assert large.max_label_length_bits() < 2 * small.max_label_length_bits()


class TestPredicateEdgeCases:
    def test_skeleton_predicate_equal_labels(self, paper_labeled_run):
        label = paper_labeled_run.label_of(RunVertex("a", 1))
        assert skeleton_predicate(label, label, paper_labeled_run.spec_index)

    def test_classify_query_pure_function(self):
        first = RunLabel(1, 1, 1, None)
        second = RunLabel(2, 3, 3, None)
        assert classify_query(first, second) == QueryPath.SKELETON

    def test_classify_fork_rule(self):
        # q2 larger, q3 smaller -> fork; unreachable both ways
        first = RunLabel(2, 3, 2, None)
        second = RunLabel(3, 2, 4, None)
        assert classify_query(first, second) == QueryPath.FORK

    def test_classify_loop_rule(self):
        first = RunLabel(2, 2, 4, None)
        second = RunLabel(3, 3, 2, None)
        assert classify_query(first, second) == QueryPath.LOOP


class TestLabelerConfiguration:
    def test_scheme_by_name(self, paper_spec):
        labeler = SkeletonLabeler(paper_spec, "bfs")
        assert labeler.spec_index.scheme_name == "bfs"

    def test_scheme_by_class(self, paper_spec):
        labeler = SkeletonLabeler(paper_spec, TCMIndex)
        assert isinstance(labeler.spec_index, TCMIndex)

    def test_scheme_by_instance(self, paper_spec):
        index = TCMIndex.build(paper_spec.graph)
        labeler = SkeletonLabeler(paper_spec, index)
        assert labeler.spec_index is index

    def test_invalid_scheme_rejected(self, paper_spec):
        with pytest.raises(LabelingError):
            SkeletonLabeler(paper_spec, 42)

    def test_plan_and_context_must_come_together(self, paper_labeler, paper_run, paper_spec):
        from repro.skeleton.construct import construct_plan

        result = construct_plan(paper_spec, paper_run)
        with pytest.raises(LabelingError):
            paper_labeler.label_run(paper_run, plan=result.plan)

    def test_mismatched_specification_rejected(self, paper_labeler):
        from repro.workflow.specification import WorkflowSpecification
        from repro.workflow.run import WorkflowRun

        other_spec = WorkflowSpecification.from_edges(
            [("s", "x"), ("x", "t")], name="other"
        )
        other_run = WorkflowRun.identity_run(other_spec)
        with pytest.raises(LabelingError):
            paper_labeler.label_run(other_run)

    def test_provided_plan_gives_same_answers(self, paper_spec, paper_labeler, paper_run):
        from repro.skeleton.construct import construct_plan

        result = construct_plan(paper_spec, paper_run)
        with_plan = paper_labeler.label_run(
            paper_run, plan=result.plan, context=result.context
        )
        fresh = paper_labeler.label_run(paper_run)
        for source in paper_run.vertices():
            for target in paper_run.vertices():
                assert with_plan.reaches(source, target) == fresh.reaches(source, target)

    def test_timings_recorded(self, paper_labeled_run):
        timings = paper_labeled_run.timings
        assert timings.total_seconds >= 0
        assert timings.plan_seconds >= 0
        assert timings.total_seconds == pytest.approx(
            timings.plan_seconds + timings.encoding_seconds + timings.assignment_seconds
        )

    def test_missing_context_entry_rejected(self, paper_spec, paper_labeler, paper_run):
        from repro.skeleton.construct import construct_plan

        result = construct_plan(paper_spec, paper_run)
        partial_context = dict(result.context)
        partial_context.pop(RunVertex("f", 1))
        with pytest.raises(LabelingError):
            paper_labeler.label_run(paper_run, plan=result.plan, context=partial_context)
