"""Unit tests for WorkflowRun and RunVertex."""

from __future__ import annotations

import pytest

from repro.exceptions import RunConformanceError
from repro.graphs.digraph import DiGraph
from repro.workflow.run import RunVertex, WorkflowRun


class TestRunVertex:
    def test_str(self):
        assert str(RunVertex("b", 3)) == "b3"

    def test_origin_property(self):
        assert RunVertex("module", 1).origin == "module"

    def test_tuple_behaviour(self):
        vertex = RunVertex("b", 2)
        module, instance = vertex
        assert (module, instance) == ("b", 2)
        assert vertex == RunVertex("b", 2)
        assert vertex != RunVertex("b", 3)


class TestWorkflowRun:
    def test_paper_run_dimensions(self, paper_run):
        assert paper_run.vertex_count == 16
        assert paper_run.edge_count == 18
        assert paper_run.source == RunVertex("a", 1)
        assert paper_run.sink == RunVertex("h", 1)

    def test_origin(self, paper_run):
        assert paper_run.origin(RunVertex("b", 3)) == "b"

    def test_instances_of(self, paper_run):
        assert {v.instance for v in paper_run.instances_of("b")} == {1, 2, 3}
        assert paper_run.instances_of("a") == [RunVertex("a", 1)]

    def test_vertex_lookup(self, paper_run):
        assert paper_run.vertex("f", 2) == RunVertex("f", 2)
        with pytest.raises(RunConformanceError):
            paper_run.vertex("f", 99)

    def test_identity_run(self, paper_spec):
        run = WorkflowRun.identity_run(paper_spec)
        assert run.vertex_count == paper_spec.vertex_count
        assert run.edge_count == paper_spec.edge_count
        assert all(v.instance == 1 for v in run.vertices())

    def test_unknown_origin_rejected(self, paper_spec):
        graph = DiGraph(edges=[(RunVertex("a", 1), RunVertex("zzz", 1)),
                               (RunVertex("zzz", 1), RunVertex("h", 1))])
        with pytest.raises(RunConformanceError):
            WorkflowRun(paper_spec, graph)

    def test_non_runvertex_rejected(self, paper_spec):
        graph = DiGraph(edges=[("a", "h")])
        with pytest.raises(RunConformanceError):
            WorkflowRun(paper_spec, graph)

    def test_source_must_originate_from_spec_source(self, paper_spec):
        graph = DiGraph(edges=[(RunVertex("b", 1), RunVertex("h", 1))])
        with pytest.raises(RunConformanceError):
            WorkflowRun(paper_spec, graph)

    def test_sink_must_originate_from_spec_sink(self, paper_spec):
        graph = DiGraph(edges=[(RunVertex("a", 1), RunVertex("b", 1))])
        with pytest.raises(RunConformanceError):
            WorkflowRun(paper_spec, graph)

    def test_validation_can_be_skipped(self, paper_spec):
        graph = DiGraph(edges=[(RunVertex("a", 1), RunVertex("zzz", 1)),
                               (RunVertex("zzz", 1), RunVertex("h", 1))])
        run = WorkflowRun(paper_spec, graph, validate=False)
        assert run.vertex_count == 3

    def test_to_dict_round_trip_fields(self, paper_run):
        payload = paper_run.to_dict()
        assert payload["specification"] == "paper-example"
        assert ["a", 1] in payload["vertices"]
        assert [["a", 1], ["b", 1]] in payload["edges"]

    def test_from_edges(self, paper_spec):
        run = WorkflowRun.from_edges(
            paper_spec,
            [
                (("a", 1), ("b", 1)), (("b", 1), ("c", 1)), (("c", 1), ("h", 1)),
                (("a", 1), ("d", 1)), (("d", 1), ("e", 1)), (("e", 1), ("f", 1)),
                (("f", 1), ("g", 1)), (("g", 1), ("h", 1)),
            ],
        )
        assert run.vertex_count == 8

    def test_repr(self, paper_run):
        assert "figure-3" in repr(paper_run)
