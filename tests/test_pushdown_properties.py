"""Property-based equivalence: SQL pushdown ≡ streamed kernel ≡ oracle.

For every pushdown-capable scheme (interval, tree-cover, chain) and both
store layouts, a sweep answered as an indexed range scan inside SQLite
must agree with the streamed-kernel answer — and both must agree with the
in-memory labeled run, the ground truth that never touched a database.
Specs are drawn as forests because the interval scheme only labels
forests; runs grow past the spec so loop/fork instances exercise the
fall-through module branch, not just the coordinate fast path.
"""

from __future__ import annotations

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.api import CrossRunQuery, DownstreamQuery, ProvenanceSession, UpstreamQuery
from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.exceptions import DatasetError
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.sharded import ShardedProvenanceStore
from repro.storage.store import ProvenanceStore

FEW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)


@st.composite
def pushdown_workload(draw):
    """A forest spec, a capable scheme, and a few labeled runs of it."""
    from repro.workflow.execution import generate_run_with_size

    scheme = draw(st.sampled_from(("interval", "tree-cover", "chain")))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    hierarchy_size = draw(st.integers(min_value=1, max_value=4))
    if hierarchy_size == 1:
        depth = 1
    else:
        depth = draw(st.integers(min_value=2, max_value=min(3, hierarchy_size)))
    n_modules = draw(st.integers(min_value=8, max_value=18))
    config = SyntheticSpecConfig(
        n_modules=n_modules,
        n_edges=n_modules - 1,  # a forest: the interval scheme's domain
        hierarchy_size=hierarchy_size,
        hierarchy_depth=depth,
        seed=seed,
        name=f"pushdown-hypo-{seed}",
    )
    try:
        spec = generate_specification(config)
    except DatasetError:
        assume(False)
    labeler = SkeletonLabeler(spec, scheme)
    run_count = draw(st.integers(min_value=1, max_value=3))
    labeled = []
    for run_index in range(run_count):
        if spec.hierarchy.size == 1:
            target = spec.vertex_count
        else:
            target = draw(
                st.integers(
                    min_value=spec.vertex_count,
                    max_value=max(50, spec.vertex_count),
                )
            )
        generated = generate_run_with_size(
            spec, target, seed=seed + run_index, name=f"run-{run_index}"
        )
        labeled.append(labeler.label_run(generated.run))
    return spec, scheme, labeled


def _oracle(labeled, vertex, *, downstream):
    neighbors = (
        labeled.downstream_of(vertex) if downstream else labeled.upstream_of(vertex)
    )
    return {(other.module, other.instance) for other in neighbors}


@given(workload=pushdown_workload())
@FEW
def test_pushdown_equals_kernel_equals_oracle_single_file(workload, tmp_path_factory):
    spec, scheme, labeled = workload
    base = tmp_path_factory.mktemp("pushdown-hypo")
    with ProvenanceStore(base / "single.db") as store:
        run_ids = [store.add_labeled_run(item) for item in labeled]
        session = ProvenanceSession(store)
        for run_id, item in zip(run_ids, labeled):
            for vertex in item.run.vertices():
                for query_type, downstream in (
                    (DownstreamQuery, True),
                    (UpstreamQuery, False),
                ):
                    sql = session.run(
                        query_type(vertex, run_id=run_id, pushdown="always")
                    )
                    kernel = session.run(
                        query_type(vertex, run_id=run_id, pushdown="never")
                    )
                    # bit-identity: same executions in the same order
                    assert sql == kernel
                    assert {
                        (other.module, other.instance) for other in sql
                    } == _oracle(item, vertex, downstream=downstream)
        paths = store.cache_stats()["pushdown"]
        assert paths["sql"].get(scheme, 0) >= 1
        assert paths["kernel"].get(scheme, 0) >= 1


@given(workload=pushdown_workload(), shards=st.integers(min_value=1, max_value=4))
@FEW
def test_pushdown_equals_kernel_on_sharded_cross_run_sweeps(
    workload, shards, tmp_path_factory
):
    spec, scheme, labeled = workload
    base = tmp_path_factory.mktemp("pushdown-hypo-sharded")
    with ShardedProvenanceStore(base / "sharded", shards) as store:
        run_ids = store.add_labeled_runs(labeled)
        session = ProvenanceSession(store)
        anchors = {
            (vertex.module, vertex.instance)
            for item in labeled
            for vertex in item.run.vertices()[:4]
        }
        for anchor in sorted(anchors):
            for direction in ("downstream", "upstream"):
                sql = session.run(
                    CrossRunQuery(spec.name, anchor, direction, pushdown="always")
                )
                kernel = session.run(
                    CrossRunQuery(spec.name, anchor, direction, pushdown="never")
                )
                assert sql.per_run == kernel.per_run
                assert sorted(sql.skipped_runs) == sorted(kernel.skipped_runs)
                # the oracle: each run's in-memory labeled answer
                downstream = direction == "downstream"
                for run_id, item in zip(run_ids, labeled):
                    vertices = {
                        (vertex.module, vertex.instance)
                        for vertex in item.run.vertices()
                    }
                    if anchor not in vertices:
                        assert run_id in sql.skipped_runs
                        continue
                    expected = _oracle(
                        item, anchor, downstream=downstream
                    )
                    assert {
                        tuple(execution) for execution in sql.per_run[run_id]
                    } == expected
