"""Randomized end-to-end correctness: SKL answers must match an independent oracle.

For a variety of specifications (the paper's example, synthetic ones of
different shapes, the Table 1 catalog) and runs of different sizes, every
skeleton-labeled reachability answer is compared against networkx's
reachability on the very same run graph.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.datasets.reallife import load_real_workflow
from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import RangeProfile, generate_run, generate_run_with_size

QUERY_SAMPLE = 400


def to_networkx(run) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_nodes_from(run.graph.vertices())
    graph.add_edges_from(run.graph.iter_edges())
    return graph


def oracle_reachability(run):
    graph = to_networkx(run)
    return {vertex: nx.descendants(graph, vertex) | {vertex} for vertex in graph.nodes}


def assert_labeled_run_correct(spec, run, scheme, rng, *, exhaustive=False):
    labeler = SkeletonLabeler(spec, scheme)
    labeled = labeler.label_run(run)
    reach = oracle_reachability(run)
    vertices = run.vertices()
    if exhaustive:
        pairs = [(u, v) for u in vertices for v in vertices]
    else:
        pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(QUERY_SAMPLE)]
    for source, target in pairs:
        expected = target in reach[source]
        assert labeled.reaches(source, target) == expected, (
            f"{scheme}+skl wrong for {source} -> {target} on {run.name}"
        )


class TestPaperExampleExhaustive:
    @pytest.mark.parametrize("scheme", ["tcm", "bfs", "dfs", "tree-cover"])
    def test_all_pairs_match_oracle(self, paper_spec, paper_run, scheme, rng):
        assert_labeled_run_correct(paper_spec, paper_run, scheme, rng, exhaustive=True)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_runs_exhaustive(self, paper_spec, seed, rng):
        generated = generate_run(
            paper_spec, RangeProfile(1, 4), seed=seed, name=f"random-{seed}"
        )
        assert_labeled_run_correct(paper_spec, generated.run, "tcm", rng, exhaustive=True)


class TestSyntheticSpecs:
    @pytest.mark.parametrize(
        "n_modules,n_edges,size,depth,seed",
        [
            (20, 25, 4, 2, 1),
            (30, 45, 5, 3, 2),
            (50, 100, 8, 4, 3),
            (60, 80, 12, 5, 4),
            (80, 200, 6, 2, 5),
        ],
    )
    def test_sampled_queries_match_oracle(self, n_modules, n_edges, size, depth, seed, rng):
        spec = generate_specification(
            SyntheticSpecConfig(
                n_modules=n_modules, n_edges=n_edges, hierarchy_size=size,
                hierarchy_depth=depth, seed=seed, name=f"spec-{seed}",
            )
        )
        generated = generate_run_with_size(spec, 6 * n_modules, seed=seed)
        assert_labeled_run_correct(spec, generated.run, "tcm", rng)

    @pytest.mark.parametrize("scheme", ["bfs", "tree-cover"])
    def test_alternative_skeleton_schemes(self, synthetic_spec, synthetic_run, scheme, rng):
        assert_labeled_run_correct(synthetic_spec, synthetic_run.run, scheme, rng)

    def test_ground_truth_plan_agrees_with_reconstruction(self, synthetic_spec, synthetic_run, rng):
        labeler = SkeletonLabeler(synthetic_spec, "tcm")
        reconstructed = labeler.label_run(synthetic_run.run)
        provided = labeler.label_run(
            synthetic_run.run, plan=synthetic_run.plan, context=synthetic_run.context
        )
        vertices = synthetic_run.run.vertices()
        for _ in range(QUERY_SAMPLE):
            source, target = rng.choice(vertices), rng.choice(vertices)
            assert reconstructed.reaches(source, target) == provided.reaches(source, target)


class TestCatalogWorkflows:
    @pytest.mark.parametrize("name", ["EBI", "PubMed", "QBLAST"])
    def test_catalog_runs_match_oracle(self, name, rng):
        spec = load_real_workflow(name)
        generated = generate_run_with_size(spec, 500, seed=11, name=f"{name}-run")
        assert_labeled_run_correct(spec, generated.run, "tcm", rng)

    def test_larger_bioaid_run(self, rng):
        spec = load_real_workflow("BioAID")
        generated = generate_run_with_size(spec, 2000, seed=12)
        assert_labeled_run_correct(spec, generated.run, "bfs", rng)
