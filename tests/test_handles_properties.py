"""Property-based equivalence of the handle APIs with the object APIs.

For every labeling scheme, the handle-native query surface
(``intern_pairs`` + ``reaches_many_ids`` / ``reaches_ids``, directly and
through the engine) must agree with the object API and with the
``transitive_closure`` oracle on random DAGs; the provenance store's cached
engine must agree with the in-memory labeled run on random specifications
and runs; and the error paths (unknown vertices, out-of-range handles,
stale traversal interners) must raise rather than mis-answer.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.engine import QueryEngine
from repro.exceptions import DatasetError, LabelingError
from repro.graphs.digraph import DiGraph
from repro.graphs.transitive_closure import transitive_closure
from repro.labeling.registry import available_schemes, build_index
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

FEW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: every scheme that accepts arbitrary DAGs (interval is forest-only)
DAG_SCHEMES = tuple(sorted(set(available_schemes()) - {"interval"}))

#: specification schemes exercised under the skeleton labeler
SPEC_SCHEMES = ("tcm", "bfs", "tree-cover", "chain", "2-hop")


@st.composite
def random_dags(draw) -> DiGraph:
    """Random DAGs built edge-wise along a topological vertex order."""
    size = draw(st.integers(min_value=1, max_value=10))
    vertices = [f"v{i}" for i in range(size)]
    graph = DiGraph(vertices=vertices)
    for j in range(1, size):
        parent_count = draw(st.integers(min_value=0, max_value=min(3, j)))
        parents = draw(
            st.lists(
                st.integers(min_value=0, max_value=j - 1),
                min_size=parent_count,
                max_size=parent_count,
                unique=True,
            )
        )
        for i in parents:
            graph.add_edge(vertices[i], vertices[j])
    return graph


@st.composite
def random_forests(draw) -> DiGraph:
    """Random forests with edges directed from parents to children."""
    size = draw(st.integers(min_value=1, max_value=12))
    vertices = [f"v{i}" for i in range(size)]
    graph = DiGraph(vertices=vertices)
    for j in range(1, size):
        parent = draw(st.integers(min_value=-1, max_value=j - 1))
        if parent >= 0:
            graph.add_edge(vertices[parent], vertices[j])
    return graph


@st.composite
def specification_and_run(draw):
    """Random well-nested specification plus a generated conforming run."""
    hierarchy_size = draw(st.integers(min_value=1, max_value=5))
    if hierarchy_size == 1:
        depth = 1
    else:
        depth = draw(st.integers(min_value=2, max_value=min(3, hierarchy_size)))
    n_modules = draw(st.integers(min_value=10, max_value=25))
    extra_edges = draw(st.integers(min_value=0, max_value=n_modules // 2))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    config = SyntheticSpecConfig(
        n_modules=n_modules,
        n_edges=n_modules - 1 + extra_edges,
        hierarchy_size=hierarchy_size,
        hierarchy_depth=depth,
        seed=seed,
        name=f"handles-hypo-{seed}",
    )
    try:
        spec = generate_specification(config)
    except DatasetError:
        assume(False)
    if spec.hierarchy.size == 1:
        target = spec.vertex_count
    else:
        target = draw(
            st.integers(min_value=spec.vertex_count, max_value=3 * spec.vertex_count)
        )
    run_seed = draw(st.integers(min_value=0, max_value=10_000))
    return spec, generate_run_with_size(spec, target, seed=run_seed)


# ----------------------------------------------------------------------
# direct schemes: handle API == object API == oracle
# ----------------------------------------------------------------------
@given(random_dags())
@SLOW
def test_handle_answers_match_oracle_on_every_dag_scheme(graph: DiGraph):
    closure = transitive_closure(graph)
    vertices = graph.vertices()
    pairs = [(u, v) for u in vertices for v in vertices]
    oracle = [closure.reaches(u, v) for u, v in pairs]
    for scheme in DAG_SCHEMES:
        index = build_index(scheme, graph)
        sources, targets = index.intern_pairs(pairs)
        assert [bool(a) for a in index.reaches_many_ids(sources, targets)] == oracle, scheme
        point = [
            index.reaches_ids(index.intern(u), index.intern(v)) for u, v in pairs
        ]
        assert [bool(a) for a in point] == oracle, scheme
        engine = QueryEngine(index)
        engine_sources, engine_targets = engine.intern_pairs(pairs)
        assert [
            bool(a) for a in engine.reaches_many_ids(engine_sources, engine_targets)
        ] == oracle, scheme


@given(random_forests())
@SLOW
def test_interval_handle_answers_match_oracle_on_forests(forest: DiGraph):
    closure = transitive_closure(forest)
    vertices = forest.vertices()
    pairs = [(u, v) for u in vertices for v in vertices]
    oracle = [closure.reaches(u, v) for u, v in pairs]
    index = build_index("interval", forest)
    sources, targets = index.intern_pairs(pairs)
    assert [bool(a) for a in index.reaches_many_ids(sources, targets)] == oracle
    engine = QueryEngine(index)
    assert [bool(a) for a in engine.reaches_many_ids(sources, targets)] == oracle


@given(random_dags())
@SLOW
def test_unknown_vertices_and_handles_raise(graph: DiGraph):
    for scheme in DAG_SCHEMES:
        index = build_index(scheme, graph)
        size = len(index.interner)
        try:
            index.intern_pairs([(graph.vertices()[0], "not-a-vertex")])
        except LabelingError:
            pass
        else:
            raise AssertionError(f"{scheme} interned an unknown vertex")
        try:
            index.reaches_many_ids([0], [size])
        except LabelingError:
            pass
        else:
            raise AssertionError(f"{scheme} accepted an out-of-range handle")


@given(random_dags(), st.sampled_from(["bfs", "dfs"]))
@SLOW
def test_traversal_interners_stale_after_vertex_addition(graph: DiGraph, scheme: str):
    index = build_index(scheme, graph)
    vertices = graph.vertices()
    first = index.intern(vertices[0])
    assert index.reaches_ids(first, first) is True
    graph.add_vertex("appended-later")
    try:
        index.reaches_ids(first, first)
    except LabelingError:
        pass
    else:
        raise AssertionError("stale traversal interner did not raise")


# ----------------------------------------------------------------------
# the skeleton scheme and the store-cached engine
# ----------------------------------------------------------------------
@given(specification_and_run(), st.integers(min_value=0, max_value=10_000))
@FEW
def test_skeleton_handle_answers_match_oracle_across_spec_schemes(
    spec_and_run, query_seed
):
    spec, generated = spec_and_run
    run = generated.run
    closure = transitive_closure(run.graph)
    vertices = run.vertices()
    rng = random.Random(query_seed)
    pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(100)]
    oracle = [closure.reaches(u, v) for u, v in pairs]
    for scheme in SPEC_SCHEMES:
        labeled = SkeletonLabeler(spec, scheme).label_run(
            run, plan=generated.plan, context=generated.context
        )
        sources, targets = labeled.intern_pairs(pairs)
        assert [
            bool(a) for a in labeled.reaches_many_ids(sources, targets)
        ] == oracle, scheme
        engine = QueryEngine(labeled)
        assert [
            bool(a) for a in engine.reaches_many_ids(sources, targets)
        ] == oracle, scheme


@pytest.mark.filterwarnings("ignore:ProvenanceStore:DeprecationWarning")
@given(specification_and_run(), st.integers(min_value=0, max_value=10_000))
@FEW
def test_store_cached_engine_matches_oracle_and_object_api(spec_and_run, query_seed):
    spec, generated = spec_and_run
    run = generated.run
    labeled = SkeletonLabeler(spec, "tcm").label_run(
        run, plan=generated.plan, context=generated.context
    )
    closure = transitive_closure(run.graph)
    vertices = run.vertices()
    rng = random.Random(query_seed)
    pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(100)]
    oracle = [closure.reaches(u, v) for u, v in pairs]
    with ProvenanceStore(":memory:") as store:
        run_id = store.add_labeled_run(labeled)
        # cold partial-cache path, then the cached-kernel path: both exact
        assert store.reaches_batch(run_id, pairs) == oracle
        engine = store.query_engine(run_id)
        sources, targets = engine.intern_pairs(pairs)
        assert [bool(a) for a in engine.reaches_many_ids(sources, targets)] == oracle
        assert store.reaches_batch(run_id, pairs) == oracle
        # the persisted interner hands back the ids the run assigned
        for vertex in vertices:
            assert engine.interner.id_of(vertex) == labeled.intern(vertex)
