"""Tests for the three-order context encoding (Algorithm 1 and Lemma 4.5)."""

from __future__ import annotations

import pytest

from repro.exceptions import LabelingError
from repro.skeleton.construct import construct_plan
from repro.skeleton.orders import ContextEncoding, encode_contexts, generate_three_orders
from repro.workflow.execution import ConstantProfile, generate_run
from repro.workflow.plan import PlanNodeKind


@pytest.fixture(scope="module")
def paper_plan_and_context(paper_spec, paper_run):
    result = construct_plan(paper_spec, paper_run)
    return result.plan, result.context


@pytest.fixture(scope="module")
def paper_encoding(paper_plan_and_context):
    plan, context = paper_plan_and_context
    return encode_contexts(plan, context)


class TestEncodingBasics:
    def test_number_of_nonempty_nodes(self, paper_encoding):
        """Figure 9 numbers nine nonempty + nodes (x1, x5, x6, x9, x12-x17 minus empties)."""
        assert paper_encoding.nonempty_count == 9

    def test_positions_are_permutations(self, paper_plan_and_context, paper_encoding):
        count = paper_encoding.nonempty_count
        for coordinate in range(3):
            values = sorted(pos[coordinate] for pos in paper_encoding.positions.values())
            assert values == list(range(1, count + 1))

    def test_root_is_first_in_every_order(self, paper_plan_and_context, paper_encoding):
        plan, _ = paper_plan_and_context
        assert paper_encoding[plan.root_id] == (1, 1, 1)

    def test_empty_node_lookup_raises(self, paper_plan_and_context, paper_encoding):
        plan, context = paper_plan_and_context
        used = set(context.values())
        empty_plus = next(n for n in plan.plus_nodes() if n.node_id not in used)
        with pytest.raises(LabelingError):
            paper_encoding[empty_plus.node_id]

    def test_contains_and_len(self, paper_plan_and_context, paper_encoding):
        plan, context = paper_plan_and_context
        assert plan.root_id in paper_encoding
        assert len(paper_encoding) == paper_encoding.nonempty_count

    def test_non_plus_context_rejected(self, paper_plan_and_context):
        plan, context = paper_plan_and_context
        minus_node = plan.minus_nodes()[0]
        bad_context = dict(context)
        some_vertex = next(iter(bad_context))
        bad_context[some_vertex] = minus_node.node_id
        with pytest.raises(LabelingError):
            encode_contexts(plan, bad_context)

    def test_generate_three_orders_consistent_with_encoding(self, paper_plan_and_context, paper_encoding):
        plan, context = paper_plan_and_context
        o1, o2, o3 = generate_three_orders(plan, set(context.values()))
        for node_id, (q1, q2, q3) in paper_encoding.positions.items():
            assert (o1[node_id], o2[node_id], o3[node_id]) == (q1, q2, q3)


def _lca_kind(plan, first: int, second: int) -> PlanNodeKind:
    """Compute the kind of the least common ancestor of two plan nodes."""
    ancestors = []
    node = plan.node(first)
    while node is not None:
        ancestors.append(node.node_id)
        node = plan.parent(node.node_id)
    ancestor_set = set(ancestors)
    node = plan.node(second)
    while node.node_id not in ancestor_set:
        node = plan.parent(node.node_id)
    return plan.node(node.node_id).kind


class TestLemma45:
    """The pairwise order of positions reveals the LCA kind (Lemma 4.5)."""

    def test_all_pairs_classification(self, paper_plan_and_context, paper_encoding):
        plan, _ = paper_plan_and_context
        nodes = list(paper_encoding.positions)
        for first in nodes:
            for second in nodes:
                if first == second:
                    continue
                q = paper_encoding[first]
                r = paper_encoding[second]
                lca = _lca_kind(plan, first, second)
                if q[0] < r[0] and r[1] < q[1]:
                    assert lca is PlanNodeKind.FORK_GROUP
                    assert q[2] < r[2]  # part (1b)
                elif q[0] < r[0] and r[2] < q[2]:
                    assert lca is PlanNodeKind.LOOP_GROUP
                    assert q[1] < r[1]  # part (2b)
                elif q[0] < r[0] and q[1] < r[1] and q[2] < r[2]:
                    assert lca.is_plus  # part (3)

    def test_lemma_on_generated_run(self, paper_spec):
        generated = generate_run(paper_spec, ConstantProfile(3), seed=17)
        result = construct_plan(paper_spec, generated.run)
        encoding = encode_contexts(result.plan, result.context)
        plan = result.plan
        nodes = list(encoding.positions)
        for first in nodes:
            for second in nodes:
                if first == second:
                    continue
                q, r = encoding[first], encoding[second]
                lca = _lca_kind(plan, first, second)
                product = (q[1] - r[1]) * (q[2] - r[2])
                if product < 0:
                    assert lca in (PlanNodeKind.FORK_GROUP, PlanNodeKind.LOOP_GROUP)
                else:
                    assert lca.is_plus

    def test_encoding_is_dataclass_frozen(self, paper_encoding):
        assert isinstance(paper_encoding, ContextEncoding)
        with pytest.raises((AttributeError, TypeError)):
            paper_encoding.positions = {}
