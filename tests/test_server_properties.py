"""Property-based equivalence of the network service with in-process sessions.

The contract of the wire protocol is total transparency: a
:class:`~repro.server.client.RemoteSession` over a served store must
answer **every** query type bit-identically to a
:class:`~repro.api.ProvenanceSession` opened on the same store — point,
batch (pair-form and the zero-parse handle-native form), anchored
sweeps, cross-run sweeps, cross-run batches and cross-run points.  Both
sessions front the same store, so run ids match and full result-object
equality applies.  A second property covers the ingest lane: runs
shipped through the wire (serialised, re-labeled server-side, committed
through the buffered path) must answer exactly like runs stored
directly.
"""

from __future__ import annotations

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.api import (
    BatchQuery,
    CrossRunBatchQuery,
    CrossRunPointQuery,
    CrossRunQuery,
    DownstreamQuery,
    PointQuery,
    ProvenanceSession,
    UpstreamQuery,
)
from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.exceptions import DatasetError
from repro.server import RemoteStore, ServerThread
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.sharded import ShardedProvenanceStore

FEW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)


@st.composite
def served_workload(draw):
    """A random spec set, labeled runs of each, and a shard count."""
    from repro.workflow.execution import generate_run_with_size

    spec_count = draw(st.integers(min_value=1, max_value=2))
    shards = draw(st.integers(min_value=1, max_value=3))
    scheme = draw(st.sampled_from(("tcm", "tree-cover", "bfs")))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    specs = []
    for index in range(spec_count):
        hierarchy_size = draw(st.integers(min_value=1, max_value=4))
        if hierarchy_size == 1:
            depth = 1
        else:
            depth = draw(st.integers(min_value=2, max_value=min(3, hierarchy_size)))
        n_modules = draw(st.integers(min_value=10, max_value=16))
        extra_edges = draw(st.integers(min_value=0, max_value=n_modules // 2))
        config = SyntheticSpecConfig(
            n_modules=n_modules,
            n_edges=n_modules - 1 + extra_edges,
            hierarchy_size=hierarchy_size,
            hierarchy_depth=depth,
            seed=seed + index,
            name=f"server-hypo-{seed}-{index}",
        )
        try:
            specs.append(generate_specification(config))
        except DatasetError:
            assume(False)
    runs_per_spec = draw(st.integers(min_value=1, max_value=2))
    labeled = []
    for spec in specs:
        labeler = SkeletonLabeler(spec, scheme)
        for run_index in range(runs_per_spec):
            if spec.hierarchy.size == 1:
                target = spec.vertex_count
            else:
                target = draw(
                    st.integers(
                        min_value=spec.vertex_count,
                        max_value=max(30, spec.vertex_count),
                    )
                )
            generated = generate_run_with_size(
                spec, target, seed=seed + run_index, name=f"run-{run_index}"
            )
            labeled.append(labeler.label_run(generated.run))
    return specs, labeled, shards


@given(workload=served_workload())
@FEW
def test_every_query_type_is_bit_identical_over_the_wire(
    workload, tmp_path_factory
):
    specs, labeled, shards = workload
    base = tmp_path_factory.mktemp("server-hypo")
    with ShardedProvenanceStore(base / "served", shards) as store:
        run_ids = store.add_labeled_runs(labeled)
        local = ProvenanceSession(store)
        with ServerThread(store) as server, RemoteStore(server.url) as client:
            remote = client.session()

            # per-run queries: points, both batch forms, anchored sweeps
            for item, run_id in zip(labeled, run_ids):
                executions = item.run.vertices()[:5]
                pairs = [(u, v) for u in executions for v in executions]
                u, v = executions[0], executions[-1]
                point = PointQuery(u, v, run_id=run_id)
                assert remote.run(point) == local.run(point)
                batch = BatchQuery(pairs=pairs, run_id=run_id)
                assert remote.run(batch) == local.run(batch)
                source_ids, target_ids = store.query_engine(run_id).intern_pairs(
                    [
                        ((u.module, u.instance), (v.module, v.instance))
                        for u, v in pairs
                    ]
                )
                handles = BatchQuery(
                    source_ids=source_ids, target_ids=target_ids, run_id=run_id
                )
                assert remote.run(handles) == local.run(handles)
                for sweep in (
                    DownstreamQuery(executions[0], run_id=run_id),
                    UpstreamQuery(executions[0], run_id=run_id),
                ):
                    assert remote.run(sweep) == local.run(sweep)

            # cross-run queries: same store on both sides, so run ids and
            # therefore whole result objects must match exactly
            for spec in specs:
                spec_runs = [
                    item
                    for item in labeled
                    if item.run.specification.name == spec.name
                ]
                anchor_vertex = spec_runs[0].run.vertices()[0]
                anchor = (anchor_vertex.module, anchor_vertex.instance)
                other_vertex = spec_runs[0].run.vertices()[-1]
                other = (other_vertex.module, other_vertex.instance)
                for query in (
                    CrossRunQuery(spec.name, anchor),
                    CrossRunQuery(spec.name, anchor, "upstream", workers=1),
                    CrossRunBatchQuery(
                        spec.name, [(anchor, anchor), (anchor, other)]
                    ),
                    CrossRunPointQuery(spec.name, anchor, other),
                ):
                    assert remote.run(query) == local.run(query)


@given(workload=served_workload(), buffered=st.booleans())
@FEW
def test_wire_ingested_runs_answer_like_directly_stored_ones(
    workload, buffered, tmp_path_factory
):
    _, labeled, shards = workload
    base = tmp_path_factory.mktemp("server-ingest-hypo")
    with ShardedProvenanceStore(
        base / "direct", shards
    ) as direct, ShardedProvenanceStore(base / "served", shards) as served:
        direct_ids = direct.add_labeled_runs(labeled)
        with ServerThread(served) as server, RemoteStore(server.url) as client:
            if buffered:
                # the buffered lane: hold everything server-side, then
                # commit in one explicit flush
                for item in labeled:
                    client.ingest([item], flush=False)
                served_ids = client.flush()
            else:
                served_ids = client.add_labeled_runs(labeled)
            assert len(served_ids) == len(direct_ids)
            remote = client.session()
            direct_session = ProvenanceSession(direct)
            for item, direct_id, served_id in zip(labeled, direct_ids, served_ids):
                executions = item.run.vertices()[:5]
                pairs = [(u, v) for u in executions for v in executions]
                assert remote.run(
                    BatchQuery(pairs=pairs, run_id=served_id)
                ) == direct_session.run(BatchQuery(pairs=pairs, run_id=direct_id))
                assert remote.run(
                    DownstreamQuery(executions[0], run_id=served_id)
                ) == direct_session.run(
                    DownstreamQuery(executions[0], run_id=direct_id)
                )
