"""The public API surface: exports, __all__ consistency and package metadata."""

from __future__ import annotations

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.api",
    "repro.engine",
    "repro.graphs",
    "repro.workflow",
    "repro.labeling",
    "repro.skeleton",
    "repro.provenance",
    "repro.storage",
    "repro.datasets",
    "repro.bench",
]


class TestExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} is exported but missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_has_no_duplicates(self, package):
        module = importlib.import_module(package)
        exported = list(getattr(module, "__all__", []))
        assert len(exported) == len(set(exported))

    def test_top_level_convenience_names(self):
        for name in (
            "WorkflowSpecification", "WorkflowRun", "RunVertex", "SkeletonLabeler",
            "SkeletonLabeledRun", "OnlineRun", "generate_run", "generate_run_with_size",
            "construct_plan", "DiGraph", "TCMIndex", "BFSIndex",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_exceptions_form_a_single_hierarchy(self):
        from repro import exceptions

        for name in exceptions.__all__:
            exc = getattr(exceptions, name)
            assert issubclass(exc, exceptions.ReproError) or exc is exceptions.ReproError

    def test_main_module_importable(self):
        module = importlib.import_module("repro.__main__")
        assert hasattr(module, "main")

    def test_dunder_main_runs_cli(self, capsys):
        import os
        import subprocess
        import sys
        from pathlib import Path

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "info", "--catalog", "EBI"],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        assert "nG (modules)  : 29" in completed.stdout
