"""Tests for the parallel cross-run execution subsystem.

Covers the executor (worker resolution, sequential auto-selection, thread
and process pool modes, bit-identical answers), the chunked multi-run
prefetch, the generalized cross-run batch/point queries, the session's
adaptive point-query promotion (with a SQL statement probe), and the CLI
surface (``sweep --workers``, ``cross-batch``).
"""

from __future__ import annotations

import pytest

from repro.api import (
    BatchQuery,
    CrossRunBatchQuery,
    CrossRunPointQuery,
    CrossRunQuery,
    PointQuery,
    ProvenanceSession,
)
from repro.engine.parallel import (
    MAX_AUTO_WORKERS,
    PARALLEL_MIN_RUNS,
    PREFETCH_CHUNK_RUNS,
    CrossRunExecutor,
    resolve_workers,
)
from repro.exceptions import QueryPlanError, StorageError
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size

RUN_COUNT = max(PARALLEL_MIN_RUNS, PREFETCH_CHUNK_RUNS) + 2


@pytest.fixture(scope="module")
def parallel_store(tmp_path_factory, paper_spec):
    """A file-backed store with enough runs to cross a prefetch boundary."""
    database = tmp_path_factory.mktemp("parallel") / "prov.db"
    labeler = SkeletonLabeler(paper_spec, "tcm")
    store = ProvenanceStore(database)
    run_ids = []
    for seed in range(RUN_COUNT):
        generated = generate_run_with_size(
            paper_spec, 20, seed=seed, name=f"par-{seed}"
        )
        run_ids.append(store.add_labeled_run(labeler.label_run(generated.run)))
    yield store, run_ids, paper_spec
    store.close()


@pytest.fixture()
def anchor(parallel_store):
    store, run_ids, spec = parallel_store
    return ("a", 1)


class TestResolveWorkers:
    def test_explicit_workers_clamped_to_runs(self):
        assert resolve_workers(16, 5) == 5
        assert resolve_workers(2, 100) == 2
        assert resolve_workers(1, 100) == 1

    def test_explicit_workers_validated(self):
        with pytest.raises(QueryPlanError):
            resolve_workers(0, 10)
        with pytest.raises(QueryPlanError):
            resolve_workers(-3, 10)

    def test_auto_is_sequential_below_min_runs(self):
        assert resolve_workers(None, PARALLEL_MIN_RUNS - 1) == 1
        assert resolve_workers(None, 0) == 1

    def test_auto_sized_from_cpu_count(self, monkeypatch):
        import repro.engine.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 6)
        assert resolve_workers(None, 100) == 6
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 64)
        assert resolve_workers(None, 100) == MAX_AUTO_WORKERS
        # a single core never pays for a pool
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 1)
        assert resolve_workers(None, 100) == 1


class TestExecutorModes:
    def test_thread_and_process_match_sequential(self, parallel_store, anchor):
        store, run_ids, spec = parallel_store
        sequential = CrossRunExecutor(store, workers=1).sweep(spec.name, anchor)
        for mode in ("thread", "process"):
            parallel = CrossRunExecutor(store, workers=3, mode=mode).sweep(
                spec.name, anchor
            )
            assert parallel == sequential, mode
        per_run, skipped = sequential
        assert set(per_run) | set(skipped) == set(run_ids)

    def test_upstream_direction(self, parallel_store):
        store, run_ids, spec = parallel_store
        sequential = CrossRunExecutor(store, workers=1).sweep(
            spec.name, ("h", 1), "upstream"
        )
        parallel = CrossRunExecutor(store, workers=3).sweep(
            spec.name, ("h", 1), "upstream"
        )
        assert parallel == sequential

    def test_batch_matches_per_run_engine(self, parallel_store):
        store, run_ids, spec = parallel_store
        run = store.get_run(run_ids[0])
        vertices = run.vertices()[:5]
        pairs = [
            ((u.module, u.instance), (v.module, v.instance))
            for u in vertices
            for v in vertices
        ]
        sequential = CrossRunExecutor(store, workers=1).batch(spec.name, pairs)
        for mode in ("thread", "process"):
            parallel = CrossRunExecutor(store, workers=3, mode=mode).batch(
                spec.name, pairs
            )
            assert parallel == sequential, mode
        per_run, _ = sequential
        session = ProvenanceSession(store)
        for run_id, answers in per_run.items():
            expected = [
                bool(a) for a in session.run(BatchQuery(pairs=pairs, run_id=run_id))
            ]
            assert answers == expected

    def test_memory_store_always_sequential(self, paper_spec, paper_run):
        labeler = SkeletonLabeler(paper_spec, "tcm")
        with ProvenanceStore() as store:
            store.add_labeled_run(labeler.label_run(paper_run))
            executor = CrossRunExecutor(store, workers=8)
            # a :memory: database is reachable only through the store's own
            # connection, so the pool must be bypassed (and still answer)
            assert executor._parallel_workers(RUN_COUNT) == 1
            per_run, skipped = executor.sweep(paper_spec.name, ("a", 1))
            assert len(per_run) == 1 and skipped == []

    def test_invalid_mode_rejected(self, parallel_store, monkeypatch):
        store, _, _ = parallel_store
        with pytest.raises(QueryPlanError):
            CrossRunExecutor(store, mode="fleet")
        monkeypatch.setenv("REPRO_PARALLEL", "banana")
        with pytest.raises(QueryPlanError):
            CrossRunExecutor(store)

    def test_mode_read_from_environment(self, parallel_store, monkeypatch):
        store, _, _ = parallel_store
        monkeypatch.setenv("REPRO_PARALLEL", "process")
        assert CrossRunExecutor(store).mode == "process"
        monkeypatch.delenv("REPRO_PARALLEL")
        assert CrossRunExecutor(store).mode == "thread"

    def test_unknown_specification_raises(self, parallel_store):
        store, _, _ = parallel_store
        with pytest.raises(StorageError):
            CrossRunExecutor(store).sweep("nope", ("a", 1))

    def test_empty_batch_rejected(self, parallel_store):
        store, _, spec = parallel_store
        with pytest.raises(QueryPlanError):
            CrossRunExecutor(store).batch(spec.name, [])


class TestChunkedPrefetch:
    def test_many_matches_per_run_fetch(self, parallel_store):
        store, run_ids, _ = parallel_store
        many = store.run_label_arrays_many(run_ids)
        assert sorted(many) == sorted(run_ids)
        for run_id in run_ids:
            single = store.run_label_arrays(run_id)
            chunked = many[run_id]
            assert chunked.executions == single.executions
            assert chunked.origins == single.origins
            assert list(chunked.q1) == list(single.q1)
            assert list(chunked.q2) == list(single.q2)
            assert list(chunked.q3) == list(single.q3)

    def test_duplicates_deduplicated(self, parallel_store):
        store, run_ids, _ = parallel_store
        many = store.run_label_arrays_many([run_ids[0], run_ids[0], run_ids[1]])
        assert sorted(many) == sorted({run_ids[0], run_ids[1]})

    def test_unknown_run_raises(self, parallel_store):
        store, run_ids, _ = parallel_store
        with pytest.raises(StorageError):
            store.run_label_arrays_many([run_ids[0], 10_000])


class TestCrossRunQueries:
    def test_batch_query_through_session(self, parallel_store):
        store, run_ids, spec = parallel_store
        session = ProvenanceSession(store)
        pairs = [(("a", 1), ("h", 1)), (("h", 1), ("a", 1))]
        result = session.run(CrossRunBatchQuery(spec.name, pairs, workers=2))
        assert sorted(result.per_run) + sorted(result.skipped_runs) == sorted(
            run_ids
        ) or set(result.per_run) | set(result.skipped_runs) == set(run_ids)
        for run_id, answers in result.per_run.items():
            assert answers[0] is True and answers[1] is False
        matrix = result.matrix()
        assert len(matrix) == result.run_count
        assert list(result.run_ids) == sorted(result.per_run)

    def test_point_query_through_session(self, parallel_store):
        store, run_ids, spec = parallel_store
        session = ProvenanceSession(store)
        result = session.run(CrossRunPointQuery(spec.name, ("a", 1), ("h", 1)))
        assert set(result.per_run) | set(result.skipped_runs) == set(run_ids)
        assert all(answer is True for answer in result.per_run.values())
        assert result.reachable_count == result.run_count

    def test_runs_missing_an_endpoint_are_skipped(self, parallel_store):
        store, run_ids, spec = parallel_store
        session = ProvenanceSession(store)
        result = session.run(
            CrossRunBatchQuery(spec.name, [(("a", 1), ("b", 99))], workers=2)
        )
        assert result.per_run == {}
        assert sorted(result.skipped_runs) == sorted(run_ids)

    def test_empty_pairs_rejected_at_query_construction(self):
        with pytest.raises(QueryPlanError):
            CrossRunBatchQuery("spec", [])

    def test_unplannable_off_store(self, paper_spec, paper_run):
        labeled = SkeletonLabeler(paper_spec, "tcm").label_run(paper_run)
        session = ProvenanceSession.for_index(labeled)
        with pytest.raises(QueryPlanError):
            session.run(CrossRunBatchQuery("x", [(("a", 1), ("h", 1))]))
        with pytest.raises(QueryPlanError):
            session.run(CrossRunPointQuery("x", ("a", 1), ("h", 1)))

    def test_sweep_workers_field(self, parallel_store):
        store, _, spec = parallel_store
        session = ProvenanceSession(store)
        sequential = session.run(CrossRunQuery(spec.name, ("a", 1), workers=1))
        parallel = session.run(CrossRunQuery(spec.name, ("a", 1), workers=2))
        assert parallel.per_run == sequential.per_run
        with pytest.raises(QueryPlanError):
            session.run(CrossRunQuery(spec.name, ("a", 1), workers=0))


class TestAdaptivePromotion:
    def _store_with_run(self, tmp_path, paper_spec, paper_run):
        labeler = SkeletonLabeler(paper_spec, "tcm")
        store = ProvenanceStore(tmp_path / "promote.db")
        run_id = store.add_labeled_run(labeler.label_run(paper_run))
        return store, run_id

    def test_promotion_makes_point_queries_sql_free(
        self, tmp_path, paper_spec, paper_run
    ):
        store, run_id = self._store_with_run(tmp_path, paper_spec, paper_run)
        session = ProvenanceSession(store, promote_after=3)
        statements: list[str] = []
        store._connection.set_trace_callback(statements.append)
        query = PointQuery(("a", 1), ("h", 1), run_id=run_id)
        # cold: each point query pays per-pair SQL
        session.run(query)
        assert statements, "cold point queries must touch SQL"
        statements.clear()
        session.run(query)
        assert statements
        # the Nth query trips promotion: the engine warms with one final
        # label fetch ...
        statements.clear()
        assert session.run(query) is True
        assert statements, "promotion warms the engine with one SQL fetch"
        # ... and every later point query replays with ZERO SQL
        statements.clear()
        for _ in range(10):
            assert session.run(query) is True
            assert session.run(PointQuery(("h", 1), ("a", 1), run_id=run_id)) is False
        assert statements == []
        store._connection.set_trace_callback(None)
        stats = session.cache_stats()
        assert stats["promoted_runs"] == [run_id]
        assert stats["promotions"] == 1
        assert stats["point_hits"][run_id] == 3
        store.close()

    def test_default_threshold_and_validation(self, tmp_path, paper_spec, paper_run):
        from repro.api import PROMOTE_AFTER_DEFAULT

        store, run_id = self._store_with_run(tmp_path, paper_spec, paper_run)
        session = ProvenanceSession(store)
        assert session.cache_stats()["promote_after"] == PROMOTE_AFTER_DEFAULT
        with pytest.raises(QueryPlanError):
            ProvenanceSession(store, promote_after=0)
        store.close()

    def test_promoted_answers_match_cold_answers(
        self, tmp_path, paper_spec, paper_run
    ):
        store, run_id = self._store_with_run(tmp_path, paper_spec, paper_run)
        session = ProvenanceSession(store, promote_after=2)
        vertices = paper_run.vertices()
        pairs = [(u, v) for u in vertices[:5] for v in vertices[:5]]
        cold = [
            ProvenanceSession(store, promote_after=10_000).run(
                PointQuery(u, v, run_id=run_id)
            )
            for u, v in pairs
        ]
        hot = [session.run(PointQuery(u, v, run_id=run_id)) for u, v in pairs]
        assert hot == cold
        store.close()

    def test_unknown_execution_stays_storage_error_after_promotion(
        self, tmp_path, paper_spec, paper_run
    ):
        # promotion must not flip the error contract: an unknown execution
        # raises StorageError with run context both before and after the
        # run switches to the compiled engine
        store, run_id = self._store_with_run(tmp_path, paper_spec, paper_run)
        session = ProvenanceSession(store, promote_after=2)
        bad = PointQuery(("ghost", 1), ("h", 1), run_id=run_id)
        with pytest.raises(StorageError, match=f"run {run_id}"):
            session.run(bad)
        good = PointQuery(("a", 1), ("h", 1), run_id=run_id)
        while run_id not in session.cache_stats()["promoted_runs"]:
            session.run(good)
        with pytest.raises(StorageError, match=f"run {run_id}"):
            session.run(bad)
        store.close()

    def test_eviction_counter_surfaces(self, tmp_path, paper_spec):
        from repro.storage import store as store_module

        labeler = SkeletonLabeler(paper_spec, "tcm")
        store = ProvenanceStore(tmp_path / "evict.db")
        run_ids = []
        for seed in range(store_module.STORED_RUN_CACHE_LIMIT + 2):
            generated = generate_run_with_size(
                paper_spec, 15, seed=seed, name=f"evict-{seed}"
            )
            run_ids.append(store.add_labeled_run(labeler.label_run(generated.run)))
        session = ProvenanceSession(store)
        for run_id in run_ids:
            store.query_engine(run_id)
        stats = session.cache_stats()
        assert stats["evictions"] >= 2
        assert stats["stored_runs_cached"] <= stats["limit"]
        store.close()


class TestSessionCacheStats:
    def test_index_target_stats(self, paper_spec, paper_run):
        labeled = SkeletonLabeler(paper_spec, "tcm").label_run(paper_run)
        session = ProvenanceSession.for_index(labeled)
        session.run(PointQuery(("a", 1), ("h", 1)))
        stats = session.cache_stats()
        assert stats["target_kind"] == "index"
        assert stats["queries"] >= 1

    def test_online_target_stats(self, paper_spec):
        from repro.skeleton.online import OnlineRun

        online = OnlineRun(paper_spec)
        online.root_scope.execute("a")
        online.root_scope.execute("d")
        session = ProvenanceSession.for_online(online)
        session.run(PointQuery(("a", 1), ("d", 1)))
        stats = session.cache_stats()
        assert stats["target_kind"] == "online"
        assert stats["kernel"] == "incremental-online"
        assert stats["rebuilds"] >= 1


class TestParallelCLI:
    def _populated_database(self, tmp_path, paper_spec, paper_run):
        labeler = SkeletonLabeler(paper_spec, "tcm")
        database = tmp_path / "cli.db"
        with ProvenanceStore(database) as store:
            store.add_labeled_run(labeler.label_run(paper_run))
            for seed in (1, 2, 3):
                generated = generate_run_with_size(
                    paper_spec, 20, seed=seed, name=f"cli-{seed}"
                )
                store.add_labeled_run(labeler.label_run(generated.run))
        return database

    def test_sweep_workers_flag(self, tmp_path, paper_spec, paper_run, capsys):
        from repro.cli import main

        database = self._populated_database(tmp_path, paper_spec, paper_run)
        assert main([
            "sweep", "--database", str(database), "--spec", "paper-example",
            "--source", "a:1", "--summary-only", "--workers", "2",
        ]) == 0
        parallel_output = capsys.readouterr().out
        assert main([
            "sweep", "--database", str(database), "--spec", "paper-example",
            "--source", "a:1", "--summary-only", "--workers", "1",
        ]) == 0
        sequential_output = capsys.readouterr().out
        # identical per-run counts, whatever the pool did
        assert parallel_output.splitlines()[:-1] == sequential_output.splitlines()[:-1]

    def test_cross_batch_command(self, tmp_path, paper_spec, paper_run, capsys):
        from repro.cli import main

        database = self._populated_database(tmp_path, paper_spec, paper_run)
        pairs_file = tmp_path / "pairs.txt"
        pairs_file.write_text("a:1 h:1\nh:1 a:1\n")
        assert main([
            "cross-batch", "--database", str(database), "--spec", "paper-example",
            "--pairs", str(pairs_file), "--workers", "2",
        ]) == 0
        output = capsys.readouterr().out
        assert "1/2 pairs reachable" in output
        assert "answered 2 pairs x" in output
        assert "reaches h:1" in output

    def test_cross_batch_summary_only(self, tmp_path, paper_spec, paper_run, capsys):
        from repro.cli import main

        database = self._populated_database(tmp_path, paper_spec, paper_run)
        pairs_file = tmp_path / "pairs.txt"
        pairs_file.write_text("a:1 h:1\n")
        assert main([
            "cross-batch", "--database", str(database), "--spec", "paper-example",
            "--pairs", str(pairs_file), "--summary-only",
        ]) == 0
        output = capsys.readouterr().out
        assert "does-not-reach" not in output and " reaches " not in output

    def test_cross_batch_empty_pairs_errors(self, tmp_path, paper_spec, paper_run):
        from repro.cli import main

        database = self._populated_database(tmp_path, paper_spec, paper_run)
        pairs_file = tmp_path / "pairs.txt"
        pairs_file.write_text("# nothing\n")
        assert main([
            "cross-batch", "--database", str(database), "--spec", "paper-example",
            "--pairs", str(pairs_file),
        ]) == 2
