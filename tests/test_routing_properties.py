"""Property-based equivalence of routed stores with the single-file store.

The routing catalog's contract extends the sharded store's transparency
guarantee: after **any** interleaving of maintenance operations —
``rebalance`` to arbitrary shards, ``replicate``, ingest of late runs,
run deletion — a sharded store must keep answering cross-run sweeps and
per-run label reads bit-identically to a single-file store that saw the
same data operations (which has no maintenance to do).  Thread and
process pools are both exercised, so relocated rows and replica
snapshots are read over every connection style the executor uses.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.engine.parallel import CrossRunExecutor
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.sharded import ShardedProvenanceStore
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size

FEW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
    ],
)

SHARDS = 3
SPEC_NAMES = ("routed-hypo-a", "routed-hypo-b")


def _specs():
    return {
        name: generate_specification(
            SyntheticSpecConfig(
                n_modules=10,
                n_edges=11,
                hierarchy_size=2,
                hierarchy_depth=2,
                name=name,
                seed=30 + index,
            )
        )
        for index, name in enumerate(SPEC_NAMES)
    }


@st.composite
def maintenance_ops(draw):
    """A random op sequence over the two specs: moves, replicas, data ops."""
    count = draw(st.integers(min_value=1, max_value=6))
    ops = []
    for _ in range(count):
        kind = draw(
            st.sampled_from(("rebalance", "split", "replicate", "ingest", "delete"))
        )
        spec = draw(st.sampled_from(SPEC_NAMES))
        if kind == "rebalance":
            ops.append((kind, spec, draw(st.integers(0, SHARDS - 1))))
        elif kind == "replicate":
            ops.append((kind, spec, draw(st.integers(1, 2))))
        elif kind == "ingest":
            ops.append((kind, spec, draw(st.integers(0, 500))))
        else:
            ops.append((kind, spec, None))
    return ops


@given(ops=maintenance_ops(), mode=st.sampled_from(("thread", "process")))
@FEW
def test_op_sequences_stay_bit_identical_to_the_single_file_store(
    ops, mode, tmp_path_factory
):
    base = tmp_path_factory.mktemp("routing-hypo")
    specs = _specs()
    labelers = {name: SkeletonLabeler(spec, "tcm") for name, spec in specs.items()}

    def label(name, seed, run_name):
        return labelers[name].label_run(
            generate_run_with_size(specs[name], 20, seed=seed, name=run_name).run
        )

    initial = [
        label(name, index, f"base-{index}")
        for index, name in enumerate(SPEC_NAMES * 2)
    ]
    anchors = {}
    for item in initial:
        name = item.run.specification.name
        if name not in anchors:
            vertex = item.run.vertices()[0]
            anchors[name] = (vertex.module, vertex.instance)

    with ProvenanceStore(base / "single.db") as single, ShardedProvenanceStore(
        base / "sharded", SHARDS
    ) as sharded:
        single_ids = [single.add_labeled_run(item) for item in initial]
        sharded_ids = sharded.add_labeled_runs(initial)
        id_pairs = list(zip(single_ids, sharded_ids))
        extra = 0

        def check():
            for name in SPEC_NAMES:
                want = CrossRunExecutor(single, workers=1).sweep(
                    name, anchors[name]
                )
                got = CrossRunExecutor(sharded, workers=2, mode=mode).sweep(
                    name, anchors[name]
                )
                assert list(got[0].values()) == list(want[0].values())
                assert len(got[1]) == len(want[1])
            for run_s, run_h in id_pairs:
                assert single.all_labels_of(run_s) == sharded.all_labels_of(run_h)

        check()
        for kind, spec, operand in ops:
            if kind == "rebalance":
                sharded.rebalance(spec, operand)
            elif kind == "split":
                sharded.split(spec)
            elif kind == "replicate":
                sharded.replicate(spec, operand)
            elif kind == "ingest":
                extra += 1
                item = label(spec, 1_000 + operand, f"late-{extra}")
                id_pairs.append(
                    (single.add_labeled_run(item), sharded.add_labeled_run(item))
                )
            elif kind == "delete":
                victims = [
                    pair
                    for pair in id_pairs
                    if any(
                        row["run_id"] == pair[1]
                        for row in sharded.list_runs(spec)
                    )
                ]
                if len(victims) < 2:
                    continue  # keep at least one run of the spec sweepable
                run_s, run_h = victims[-1]
                single.delete_run(run_s)
                sharded.delete_run(run_h)
                id_pairs.remove((run_s, run_h))
            check()
