"""Property-based tests for dynamic updates (hypothesis).

The contract under test is **answers-equivalence**: after *any* sequence of
edge insertions and deletions applied through a mutable index's delta
strategies, every point, batch and sweep answer must be bit-identical to a
fresh relabel of the mutated graph — and no cached layer (the engine's
hot-pair LRU, its compiled batch kernel, a compiled session plan) may
serve a pre-update answer.  Repaired labels are allowed to differ from a
fresh build's labels; the answers are not.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import PointQuery, ProvenanceSession
from repro.engine.query import QueryEngine
from repro.exceptions import EdgeNotFoundError, GraphError
from repro.graphs.digraph import DiGraph
from repro.labeling.registry import build_index

DAG_SCHEMES = ("tcm", "bfs", "dfs", "tree-cover", "chain", "2-hop")

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def dag_update_scenarios(draw):
    """A random DAG plus a random insert/delete sequence over its vertices.

    Updates are proposed as bare ``(op, tail, head)`` triples; invalid ones
    (cycles, self-loops, missing edges) are *applied anyway* and expected
    to be rejected without corrupting the index — rejection is part of the
    surface under test.
    """
    size = draw(st.integers(min_value=2, max_value=10))
    vertices = [f"v{i}" for i in range(size)]
    graph = DiGraph(vertices=vertices)
    for j in range(1, size):
        for i in range(j):
            if draw(st.booleans()) and draw(st.booleans()):
                graph.add_edge(vertices[i], vertices[j])
    updates = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.integers(min_value=0, max_value=size - 1),
                st.integers(min_value=0, max_value=size - 1),
            ),
            min_size=1,
            max_size=8,
        )
    )
    return graph, vertices, updates


@st.composite
def forest_update_scenarios(draw):
    """A random forest plus forest-preserving detach/attach updates."""
    size = draw(st.integers(min_value=2, max_value=10))
    vertices = [f"v{i}" for i in range(size)]
    graph = DiGraph(vertices=vertices)
    parent: dict[str, str | None] = {vertices[0]: None}
    for j in range(1, size):
        if draw(st.booleans()):
            index = draw(st.integers(min_value=0, max_value=j - 1))
            parent[vertices[j]] = vertices[index]
            graph.add_edge(vertices[index], vertices[j])
        else:
            parent[vertices[j]] = None
    steps = draw(st.integers(min_value=1, max_value=6))
    return graph, vertices, parent, steps


def apply_update(index, op, tail, head) -> bool:
    """Apply one proposed update; returns whether it was accepted."""
    try:
        if op == "insert":
            index.insert_edge(tail, head)
        else:
            index.delete_edge(tail, head)
        return True
    except (GraphError, EdgeNotFoundError):
        return False


def assert_answers_match(scheme, index, engine, graph, vertices):
    fresh = build_index(scheme, graph)
    pairs = [(u, v) for u in vertices for v in vertices]
    expected = [fresh.reaches(u, v) for u, v in pairs]
    # point answers through the (possibly stale-cached) engine
    assert [engine.reaches(u, v) for u, v in pairs] == expected
    # batch answers through the engine's compiled kernel
    assert list(engine.reaches_batch(pairs)) == expected
    # sweep answers through the handle surface
    for anchor in vertices:
        assert sorted(engine.dependency_sweep(anchor)) == sorted(
            v for (u, v), answer in zip(pairs, expected) if u == anchor and answer and v != anchor
        )


@SLOW
@given(scenario=dag_update_scenarios(), scheme=st.sampled_from(DAG_SCHEMES))
def test_dag_updates_answer_like_fresh_relabel(scenario, scheme):
    graph, vertices, updates = scenario
    index = build_index(scheme, graph)
    engine = QueryEngine(index)
    # warm every cache layer with pre-update answers
    engine.reaches_batch([(u, v) for u in vertices for v in vertices])
    for op, i, j in updates:
        if apply_update(index, op, vertices[i], vertices[j]):
            assert_answers_match(scheme, index, engine, graph, vertices)
    assert_answers_match(scheme, index, engine, graph, vertices)


@SLOW
@given(scenario=forest_update_scenarios())
def test_interval_forest_updates_answer_like_fresh_relabel(scenario):
    graph, vertices, parent, steps = scenario
    index = build_index("interval", graph)
    engine = QueryEngine(index)
    engine.reaches_batch([(u, v) for u in vertices for v in vertices])
    detached = [v for v, p in parent.items() if p is None]
    attached = [v for v, p in parent.items() if p is not None]
    for step in range(steps):
        if attached and (step % 2 == 0 or not detached):
            vertex = attached.pop(step % len(attached))
            index.delete_edge(parent[vertex], vertex)
            parent[vertex] = None
            detached.append(vertex)
        else:
            # reattach a rootless vertex under any vertex outside its subtree
            vertex = detached.pop(step % len(detached))
            for candidate in vertices:
                if candidate != vertex and not index.reaches(vertex, candidate):
                    index.insert_edge(candidate, vertex)
                    parent[vertex] = candidate
                    attached.append(vertex)
                    break
            else:
                detached.append(vertex)
        assert_answers_match("interval", index, engine, graph, vertices)


@SLOW
@given(scenario=dag_update_scenarios(), scheme=st.sampled_from(DAG_SCHEMES))
def test_compiled_session_plans_never_serve_stale_answers(scenario, scheme):
    graph, vertices, updates = scenario
    index = build_index(scheme, graph)
    session = ProvenanceSession.for_index(index)
    pairs = [(u, v) for u in vertices for v in vertices]
    plans = {pair: session.compile(PointQuery(*pair)) for pair in pairs}
    for pair, plan in plans.items():
        plan.execute()  # seat the compiled plans on pre-update state
    for op, i, j in updates:
        apply_update(index, op, vertices[i], vertices[j])
    fresh = build_index(scheme, graph)
    for (u, v), plan in plans.items():
        assert plan.execute() == fresh.reaches(u, v)
