"""Tests for the synthetic generator and the Table 1 catalog."""

from __future__ import annotations

import random

import pytest

from repro.datasets.blocks import BodyNode, build_region_tree, minimum_anchor_count
from repro.datasets.reallife import (
    REAL_WORKFLOW_PROFILES,
    load_all_real_workflows,
    load_real_workflow,
    real_workflow_names,
)
from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.exceptions import DatasetError
from repro.workflow.subgraphs import RegionKind


class TestRegionTree:
    def test_size_and_depth_exact(self):
        rng = random.Random(0)
        root = build_region_tree(8, 4, rng=rng)
        nodes = root.subtree()
        assert len(nodes) == 8
        assert max(node.depth for node in nodes) == 4

    def test_single_node_tree(self):
        root = build_region_tree(1, 1, rng=random.Random(0))
        assert root.is_root and root.children == []

    def test_invalid_depth_for_empty_tree(self):
        with pytest.raises(DatasetError):
            build_region_tree(1, 2, rng=random.Random(0))

    def test_depth_needs_enough_regions(self):
        with pytest.raises(DatasetError):
            build_region_tree(3, 5, rng=random.Random(0))

    def test_depth_two_when_regions_exist(self):
        with pytest.raises(DatasetError):
            build_region_tree(4, 1, rng=random.Random(0))

    def test_both_kinds_present_with_two_or_more_regions(self):
        for seed in range(10):
            root = build_region_tree(5, 2, rng=random.Random(seed), fork_fraction=0.99)
            kinds = {node.kind for node in root.descendants()}
            assert RegionKind.FORK in kinds and RegionKind.LOOP in kinds

    def test_minimum_anchor_count(self):
        root = BodyNode(name="__root__", kind=None)
        fork = BodyNode(name="F1", kind=RegionKind.FORK, parent=root)
        loop = BodyNode(name="L1", kind=RegionKind.LOOP, parent=root)
        root.children = [fork, loop]
        assert minimum_anchor_count(fork) == 1
        assert minimum_anchor_count(loop) == 2
        assert minimum_anchor_count(root) == 3


class TestSyntheticGenerator:
    @pytest.mark.parametrize(
        "n_modules,n_edges,size,depth",
        [
            (30, 40, 4, 2),
            (50, 100, 8, 3),
            (100, 200, 10, 4),
            (200, 400, 10, 4),
            (25, 24, 1, 1),
        ],
    )
    def test_exact_parameters(self, n_modules, n_edges, size, depth):
        spec = generate_specification(
            SyntheticSpecConfig(n_modules, n_edges, size, depth, seed=3)
        )
        assert spec.vertex_count == n_modules
        assert spec.edge_count == n_edges
        assert spec.hierarchy.size == size
        assert spec.hierarchy.depth == depth

    def test_keyword_interface(self):
        spec = generate_specification(
            n_modules=40, n_edges=60, hierarchy_size=5, hierarchy_depth=3, seed=1
        )
        assert spec.vertex_count == 40

    def test_missing_parameters_rejected(self):
        with pytest.raises(DatasetError):
            generate_specification(n_modules=40, n_edges=60)

    def test_determinism(self):
        config = SyntheticSpecConfig(60, 90, 6, 3, seed=9)
        first = generate_specification(config)
        second = generate_specification(config)
        assert first.graph == second.graph
        assert set(first.regions) == set(second.regions)

    def test_different_seeds_differ(self):
        first = generate_specification(SyntheticSpecConfig(60, 90, 6, 3, seed=1))
        second = generate_specification(SyntheticSpecConfig(60, 90, 6, 3, seed=2))
        assert first.graph != second.graph or set(first.regions) != set(second.regions)

    def test_too_few_modules_rejected(self):
        with pytest.raises(DatasetError):
            generate_specification(SyntheticSpecConfig(5, 10, 10, 4, seed=0))

    def test_too_few_edges_rejected(self):
        with pytest.raises(DatasetError):
            generate_specification(SyntheticSpecConfig(50, 30, 5, 3, seed=0))

    def test_too_many_edges_rejected(self):
        with pytest.raises(DatasetError):
            generate_specification(SyntheticSpecConfig(10, 200, 3, 2, seed=0))

    def test_fork_fraction_extremes(self):
        mostly_loops = generate_specification(
            SyntheticSpecConfig(50, 80, 6, 3, fork_fraction=0.0, seed=4)
        )
        assert len(mostly_loops.loops) >= len(mostly_loops.forks)
        mostly_forks = generate_specification(
            SyntheticSpecConfig(50, 80, 6, 3, fork_fraction=1.0, seed=4)
        )
        assert len(mostly_forks.forks) >= len(mostly_forks.loops)

    def test_generated_spec_is_usable_for_runs(self):
        from repro.workflow.execution import generate_run_with_size

        spec = generate_specification(SyntheticSpecConfig(40, 70, 6, 3, seed=5))
        generated = generate_run_with_size(spec, 400, seed=5)
        assert generated.run.vertex_count >= 400


class TestRealWorkflowCatalog:
    def test_names(self):
        assert real_workflow_names() == ["EBI", "PubMed", "QBLAST", "BioAID", "ProScan", "ProDisc"]

    @pytest.mark.parametrize("profile", REAL_WORKFLOW_PROFILES, ids=lambda p: p.name)
    def test_table1_characteristics_exact(self, profile):
        spec = load_real_workflow(profile.name)
        assert spec.vertex_count == profile.n_modules
        assert spec.edge_count == profile.n_edges
        assert spec.hierarchy.size == profile.hierarchy_size
        assert spec.hierarchy.depth == profile.hierarchy_depth

    def test_lookup_is_case_insensitive(self):
        assert load_real_workflow("qblast").name == "QBLAST"

    def test_unknown_workflow_rejected(self):
        with pytest.raises(DatasetError):
            load_real_workflow("SuperBLAST")

    def test_load_all(self):
        catalog = load_all_real_workflows()
        assert set(catalog) == set(real_workflow_names())

    def test_catalog_is_deterministic(self):
        assert load_real_workflow("EBI").graph == load_real_workflow("EBI").graph
