"""Tests for the dynamic-update subsystem (``repro.dynamic``).

Covers the update surface on :class:`ReachabilityIndex` (``insert_edge`` /
``delete_edge``), the per-scheme delta strategies and their
:class:`UpdateLog` records, the ``mutable`` capability flag, validation
(cycles, forests, unknown vertices, idempotent no-ops), the generic
rebuild fallback, invalidation of every cached query layer, and the
store's ``update_run_labels`` write path.
"""

from __future__ import annotations

import pytest

from repro.dynamic import UpdateLog, UpdateRecord, register_strategy
from repro.engine.query import QueryEngine
from repro.exceptions import (
    EdgeNotFoundError,
    GraphError,
    LabelingError,
    StorageError,
)
from repro.graphs.digraph import DiGraph
from repro.labeling.base import capabilities_of
from repro.labeling.registry import available_schemes, build_index
from repro.labeling.tcm import TCMIndex

ALL_SCHEMES = ("tcm", "bfs", "dfs", "interval", "tree-cover", "chain", "2-hop")
DAG_SCHEMES = tuple(name for name in ALL_SCHEMES if name != "interval")


def diamond_graph() -> DiGraph:
    graph = DiGraph(vertices=["s", "a", "b", "t"])
    graph.add_edges([("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")])
    return graph


def forest_graph() -> DiGraph:
    # two trees:  r1 -> {x -> {x1, x2}, y}   and   r2 -> z
    graph = DiGraph(vertices=["r1", "x", "x1", "x2", "y", "r2", "z"])
    graph.add_edges(
        [("r1", "x"), ("x", "x1"), ("x", "x2"), ("r1", "y"), ("r2", "z")]
    )
    return graph


def all_pairs(index):
    vertices = sorted(index.graph.vertices())
    return {
        (u, v): index.reaches(u, v) for u in vertices for v in vertices
    }


def fresh_answers(scheme: str, graph: DiGraph):
    return all_pairs(build_index(scheme, graph))


class TestCapabilities:
    def test_every_registered_scheme_is_covered(self):
        assert sorted(ALL_SCHEMES) == available_schemes()

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_builtin_schemes_are_mutable(self, scheme):
        index = build_index(scheme, diamond_graph() if scheme != "interval" else forest_graph())
        assert capabilities_of(index).mutable is True

    def test_immutable_subclass_rejects_updates(self):
        class FrozenTCM(TCMIndex):
            mutable = False

        index = FrozenTCM(diamond_graph())
        with pytest.raises(LabelingError, match="in-place edge updates"):
            index.insert_edge("a", "b")
        with pytest.raises(LabelingError, match="in-place edge updates"):
            index.delete_edge("s", "a")


class TestValidation:
    @pytest.mark.parametrize("scheme", DAG_SCHEMES)
    def test_cycle_rejected_before_mutation(self, scheme):
        index = build_index(scheme, diamond_graph())
        with pytest.raises(GraphError, match="cycle"):
            index.insert_edge("t", "s")
        assert not index.graph.has_edge("t", "s")
        assert len(index.update_log) == 0

    def test_self_loop_rejected(self):
        index = build_index("tcm", diamond_graph())
        with pytest.raises(GraphError):
            index.insert_edge("a", "a")

    def test_unknown_vertex_rejected(self):
        index = build_index("tcm", diamond_graph())
        with pytest.raises(LabelingError):
            index.insert_edge("s", "ghost")

    def test_existing_edge_insert_is_noop(self):
        index = build_index("tcm", diamond_graph())
        version = index.update_version
        index.insert_edge("s", "a")
        assert index.update_version == version
        assert len(index.update_log) == 0

    def test_missing_edge_delete_raises(self):
        index = build_index("tcm", diamond_graph())
        with pytest.raises(EdgeNotFoundError):
            index.delete_edge("a", "b")

    def test_interval_rejects_second_parent(self):
        index = build_index("interval", forest_graph())
        with pytest.raises(GraphError, match="forest"):
            index.insert_edge("y", "x1")  # x1 already hangs under x
        assert not index.graph.has_edge("y", "x1")


class TestDeltaStrategies:
    @pytest.mark.parametrize("scheme", DAG_SCHEMES)
    def test_insert_then_delete_round_trip(self, scheme):
        graph = diamond_graph()
        index = build_index(scheme, graph)
        before = all_pairs(index)

        index.insert_edge("a", "b")
        assert index.reaches("a", "b")
        assert all_pairs(index) == fresh_answers(scheme, graph)

        index.delete_edge("a", "b")
        assert all_pairs(index) == before

    def test_interval_subtree_moves_between_trees(self):
        index = build_index("interval", forest_graph())
        index.delete_edge("r1", "x")
        assert not index.reaches("r1", "x1")
        index.insert_edge("z", "x")
        assert index.reaches("r2", "x2")
        assert all_pairs(index) == fresh_answers("interval", index.graph)

    def test_strategy_names_recorded(self):
        expectations = {
            "tcm": "row-patch",
            "tree-cover": "region-recompute",
            "2-hop": "hop-patch",
            "bfs": "live",
        }
        for scheme, strategy in expectations.items():
            index = build_index(scheme, diamond_graph())
            index.insert_edge("a", "b")
            record = index.update_log.last
            assert record.op == "insert"
            assert record.strategy == strategy, scheme

        index = build_index("interval", forest_graph())
        index.delete_edge("x", "x1")
        assert index.update_log.last.strategy == "subtree-renumber"

    def test_chain_split_on_link_delete(self):
        graph = DiGraph(vertices=["a", "b", "c", "d"])
        graph.add_edges([("a", "b"), ("b", "c"), ("c", "d")])
        index = build_index("chain", graph)
        index.delete_edge("b", "c")
        assert index.update_log.last.strategy == "chain-split"
        assert not index.reaches("a", "c")
        assert index.reaches("c", "d")
        assert all_pairs(index) == fresh_answers("chain", graph)

    def test_update_log_accounting(self):
        index = build_index("tcm", diamond_graph())
        index.insert_edge("a", "b")
        index.delete_edge("a", "b")
        log = index.update_log
        assert len(log) == 2
        assert [record.op for record in log] == ["insert", "delete"]
        assert log.strategy_counts == {"row-patch": 2}
        assert log.rebuilds == 0
        assert log.touched_total >= 2

    def test_unregistered_scheme_falls_back_to_rebuild(self):
        class CustomTCM(TCMIndex):
            scheme_name = "custom-tcm-subclass"

        index = CustomTCM(diamond_graph())
        index.insert_edge("a", "b")
        assert index.update_log.last.strategy == "rebuild"
        assert index.update_log.rebuilds == 1
        assert all_pairs(index) == fresh_answers("tcm", index.graph)

    def test_register_strategy_overrides_fallback(self):
        class HookedTCM(TCMIndex):
            scheme_name = "hooked-tcm-subclass"

        calls = []

        def insert(index, tail, head):
            index.graph.add_edge(tail, head)
            calls.append(("insert", tail, head))
            from repro.dynamic.strategies import _full_rebuild

            _full_rebuild(index)
            return "custom", 1

        def delete(index, tail, head):
            index.graph.remove_edge(tail, head)
            calls.append(("delete", tail, head))
            from repro.dynamic.strategies import _full_rebuild

            _full_rebuild(index)
            return "custom", 1

        register_strategy("hooked-tcm-subclass", insert, delete)
        index = HookedTCM(diamond_graph())
        index.insert_edge("a", "b")
        assert calls == [("insert", "a", "b")]
        assert index.update_log.last.strategy == "custom"


class TestCacheInvalidation:
    def test_engine_hot_pair_cache_refreshes(self):
        index = build_index("tcm", diamond_graph())
        engine = QueryEngine(index)
        assert engine.reaches("a", "b") is False
        assert engine.reaches("a", "b") is False  # seat the hot-pair LRU
        index.insert_edge("a", "b")
        assert engine.reaches("a", "b") is True
        index.delete_edge("a", "b")
        assert engine.reaches("a", "b") is False

    def test_engine_batch_kernel_recompiles(self):
        index = build_index("tree-cover", diamond_graph())
        engine = QueryEngine(index)
        assert engine.reaches_batch([("a", "b"), ("s", "t")]) == [False, True]
        index.insert_edge("a", "b")
        assert engine.reaches_batch([("a", "b"), ("s", "t")]) == [True, True]

    def test_engine_dependency_sweep_refreshes(self):
        index = build_index("2-hop", diamond_graph())
        engine = QueryEngine(index)
        assert engine.dependency_sweep("a") == ["t"]
        index.insert_edge("a", "b")
        assert sorted(engine.dependency_sweep("a")) == ["b", "t"]

    def test_session_plan_reexecutes_fresh(self):
        from repro.api import PointQuery, ProvenanceSession

        index = build_index("chain", diamond_graph())
        session = ProvenanceSession.for_index(index)
        plan = session.compile(PointQuery("a", "b"))
        assert plan.execute() is False
        index.insert_edge("a", "b")
        assert plan.stale
        assert plan.execute() is True
        assert not plan.stale

    def test_update_version_tracks_graph(self):
        index = build_index("tcm", diamond_graph())
        assert index.update_version == index.graph.update_version
        index.insert_edge("a", "b")
        assert index.update_version == index.graph.update_version


class TestUpdateLogObject:
    def test_record_fields_and_iteration(self):
        log = UpdateLog()
        log.append(
            UpdateRecord(op="insert", tail=1, head=2, strategy="live", touched=0)
        )
        assert log[0].tail == 1
        assert list(log)[0].head == 2
        assert log.last.strategy == "live"
        assert log.strategy_counts == {"live": 1}


class TestStoreUpdateRunLabels:
    def _paper_pair(self):
        from tests.conftest import make_paper_run, make_paper_specification
        from repro.skeleton.skl import SkeletonLabeler

        spec = make_paper_specification()
        labeler = SkeletonLabeler(spec, "tcm")
        run = make_paper_run(spec)
        return spec, labeler, run

    def _rewire(self, run):
        """Swap the two F1 branches: b1's chain now ends at h directly."""
        graph = run.graph
        from repro.workflow.run import RunVertex as V

        graph.remove_edge(V("c", 1), V("b", 2))
        graph.remove_edge(V("c", 3), V("h", 1))
        graph.add_edge(V("c", 3), V("b", 2))
        graph.add_edge(V("c", 1), V("h", 1))

    def test_targeted_update_round_trip(self, tmp_path):
        from repro.storage.store import ProvenanceStore

        spec, labeler, run = self._paper_pair()
        with ProvenanceStore(tmp_path / "store.db") as store:
            run_id = store.add_labeled_run(labeler.label_run(run))
            assert store._reaches(run_id, ("b", 1), ("b", 2)) is True

            self._rewire(run)
            changed = store.update_run_labels(run_id, labeler.label_run(run))
            assert changed > 0
            # the row count did not change: targeted UPDATEs, not re-insert
            assert store.statistics()["run_labels"] == run.vertex_count
            assert store._reaches(run_id, ("b", 1), ("b", 2)) is False
            assert store._reaches(run_id, ("b", 3), ("b", 2)) is True
            # the run document was refreshed alongside the labels
            assert set(store.get_run(run_id).graph.iter_edges()) == set(
                run.graph.iter_edges()
            )

    def test_cold_reopen_serves_repaired_labels(self, tmp_path):
        from repro.storage.store import ProvenanceStore

        spec, labeler, run = self._paper_pair()
        path = tmp_path / "store.db"
        with ProvenanceStore(path) as store:
            run_id = store.add_labeled_run(labeler.label_run(run))
            self._rewire(run)
            store.update_run_labels(run_id, labeler.label_run(run))
        with ProvenanceStore(path) as reopened:
            assert reopened._reaches(run_id, ("b", 1), ("b", 2)) is False
            assert reopened._reaches(run_id, ("b", 3), ("b", 2)) is True

    def test_cached_engine_invalidated(self, tmp_path):
        from repro.api import PointQuery, ProvenanceSession
        from repro.storage.store import ProvenanceStore

        spec, labeler, run = self._paper_pair()
        with ProvenanceStore(tmp_path / "store.db") as store:
            run_id = store.add_labeled_run(labeler.label_run(run))
            engine = store.query_engine(run_id)
            assert engine.reaches(("b", 1), ("b", 2)) is True
            self._rewire(run)
            store.update_run_labels(run_id, labeler.label_run(run))
            assert not store.has_compiled_engine(run_id)
            assert store.query_engine(run_id).reaches(("b", 1), ("b", 2)) is False
            session = ProvenanceSession(store)
            assert (
                session.run(PointQuery(("b", 3), ("b", 2), run_id=run_id)) is True
            )

    def test_execution_set_must_match(self, tmp_path):
        from repro.storage.store import ProvenanceStore
        from repro.workflow.execution import generate_run_with_size

        spec, labeler, run = self._paper_pair()
        other = generate_run_with_size(spec, 24, seed=5, name="other").run
        with ProvenanceStore(tmp_path / "store.db") as store:
            run_id = store.add_labeled_run(labeler.label_run(run))
            with pytest.raises(StorageError, match="execution set"):
                store.update_run_labels(run_id, labeler.label_run(other))

    def test_scheme_must_match(self, tmp_path):
        from repro.skeleton.skl import SkeletonLabeler
        from repro.storage.store import ProvenanceStore

        spec, labeler, run = self._paper_pair()
        with ProvenanceStore(tmp_path / "store.db") as store:
            run_id = store.add_labeled_run(labeler.label_run(run))
            other_labeler = SkeletonLabeler(spec, "bfs")
            with pytest.raises(StorageError, match="scheme"):
                store.update_run_labels(run_id, other_labeler.label_run(run))

    def test_unknown_run_raises(self, tmp_path):
        from repro.storage.store import ProvenanceStore

        spec, labeler, run = self._paper_pair()
        with ProvenanceStore(tmp_path / "store.db") as store:
            with pytest.raises(StorageError):
                store.update_run_labels(404, labeler.label_run(run))


class TestIngestWhileUpdating:
    def test_concurrent_update_relabel_and_sweeps_over_wal(self, tmp_path):
        import threading

        from tests.conftest import make_paper_run, make_paper_specification
        from repro.skeleton.skl import SkeletonLabeler
        from repro.storage.sharded import ShardedProvenanceStore
        from repro.workflow.execution import generate_run_with_size
        from repro.workflow.run import RunVertex as V

        spec = make_paper_specification()
        labeler = SkeletonLabeler(spec, "tcm")
        run = make_paper_run(spec)
        path = tmp_path / "dynamic"
        store = ShardedProvenanceStore(path, 4)
        run_id = store.add_labeled_run(labeler.label_run(run))
        for seed in (1, 2):
            generated = generate_run_with_size(spec, 20, seed=seed, name=f"bg-{seed}")
            store.add_labeled_run(labeler.label_run(generated.run))

        v1_downstream = {("c", 1), ("b", 2), ("c", 2), ("h", 1)}
        v2_downstream = {("c", 1), ("h", 1)}
        flips = 5  # odd: the run ends in the rewired (v2) state
        errors: list[BaseException] = []

        def writer():
            try:
                graph = run.graph
                for flip in range(flips):
                    if flip % 2 == 0:  # v1 -> v2
                        graph.remove_edge(V("c", 1), V("b", 2))
                        graph.remove_edge(V("c", 3), V("h", 1))
                        graph.add_edge(V("c", 3), V("b", 2))
                        graph.add_edge(V("c", 1), V("h", 1))
                    else:  # v2 -> v1
                        graph.remove_edge(V("c", 3), V("b", 2))
                        graph.remove_edge(V("c", 1), V("h", 1))
                        graph.add_edge(V("c", 1), V("b", 2))
                        graph.add_edge(V("c", 3), V("h", 1))
                    store.update_run_labels(run_id, labeler.label_run(run))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            # its own store handle over the same shard files: WAL lets the
            # sweeps read while the writer's targeted UPDATEs commit
            try:
                from repro.api import DownstreamQuery, ProvenanceSession

                with ShardedProvenanceStore(path) as reader_store:
                    session = ProvenanceSession(reader_store)
                    for _ in range(10):
                        affected = session.run(
                            DownstreamQuery(("b", 1), run_id=run_id)
                        )
                        observed = {tuple(v) for v in affected}
                        assert observed in (v1_downstream, v2_downstream), observed
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # the hot store serves the repaired labels...
        assert store._reaches(run_id, ("b", 1), ("b", 2)) is False
        assert store._reaches(run_id, ("b", 3), ("b", 2)) is True
        store.close()
        # ...and so does a cold reopen: the repaired labels won
        with ShardedProvenanceStore(path) as reopened:
            assert reopened._reaches(run_id, ("b", 1), ("b", 2)) is False
            assert reopened._reaches(run_id, ("b", 3), ("b", 2)) is True
            session = reopened.session()
            from repro.api import DownstreamQuery

            affected = session.run(DownstreamQuery(("b", 1), run_id=run_id))
            assert {tuple(v) for v in affected} == v2_downstream


class TestShardedCounterAttribution:
    def test_sweep_counters_land_on_owning_shard(self, tmp_path):
        from tests.conftest import make_paper_run, make_paper_specification
        from repro.skeleton.skl import SkeletonLabeler
        from repro.storage.sharded import ShardedProvenanceStore

        spec = make_paper_specification()
        labeler = SkeletonLabeler(spec, "tcm")
        with ShardedProvenanceStore(tmp_path / "sharded", 4) as store:
            run_id = store.add_labeled_run(labeler.label_run(make_paper_run(spec)))
            owner = store._store_of_run(run_id)
            store._note_sweep_path("tcm", pushdown=True, run_id=run_id)
            assert owner._sweep_paths["sql"].get("tcm") == 1
            for shard_store in store._stores:
                if shard_store is not owner:
                    assert not shard_store._sweep_paths["sql"]
            # without a run context the counter still lands somewhere (shard 0)
            store._note_sweep_path("tcm", pushdown=False)
            assert store._stores[0]._sweep_paths["kernel"].get("tcm") == 1
            # aggregated stats see both either way
            stats = store.cache_stats()
            assert stats["pushdown"]["sql"]["tcm"] == 1
            assert stats["pushdown"]["kernel"]["tcm"] == 1

    def test_parallel_executor_notes_owning_shard(self, tmp_path):
        from tests.conftest import make_paper_run, make_paper_specification
        from repro.api import CrossRunQuery, ProvenanceSession
        from repro.skeleton.skl import SkeletonLabeler
        from repro.storage.sharded import ShardedProvenanceStore
        from repro.workflow.execution import generate_run_with_size

        spec = make_paper_specification()
        labeler = SkeletonLabeler(spec, "tcm")
        with ShardedProvenanceStore(tmp_path / "sharded", 4) as store:
            labeled = [labeler.label_run(make_paper_run(spec))]
            for seed in (1, 2):
                generated = generate_run_with_size(
                    spec, 20, seed=seed, name=f"attr-{seed}"
                )
                labeled.append(labeler.label_run(generated.run))
            run_ids = store.add_labeled_runs(labeled)
            session = ProvenanceSession(store)
            session.run(CrossRunQuery("paper-example", ("a", 1), "downstream"))
            owner = store._store_of_run(sorted(run_ids)[0])
            noted = sum(
                count
                for shard_store in store._stores
                for count in (
                    list(shard_store._sweep_paths["sql"].values())
                    + list(shard_store._sweep_paths["kernel"].values())
                )
            )
            assert noted == 1
            assert (
                owner._sweep_paths["sql"].get("tcm", 0)
                + owner._sweep_paths["kernel"].get("tcm", 0)
                == 1
            )
