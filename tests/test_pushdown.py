"""SQL pushdown: schema v3, capability flags, planner modes, wire plumbing.

The pushdown contract is bit-identity: a sweep answered as an indexed range
scan inside the shard's SQLite must return exactly what the streamed-kernel
path returns, in the same order.  These tests pin the v2 -> v3 in-place
migration (both store layouts, idempotent across double-open), the shared
chunking helper's 999-parameter budget, the per-scheme capability flags,
the planner's auto/always/never dispatch, the EXPLAIN QUERY PLAN shape of
the pushed-down statements (index searches only, no table scans), the
path counters, and the protocol-v2 wire plumbing end to end — local store,
sharded store, CLI and ``repro://`` remote alike.
"""

from __future__ import annotations

import sqlite3

import pytest

import repro.storage.database as database_module
from repro.api import (
    CrossRunQuery,
    DownstreamQuery,
    ProvenanceSession,
    UpstreamQuery,
)
from repro.cli import main
from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.exceptions import ProtocolError, QueryPlanError, StorageError
from repro.labeling.base import capabilities_of
from repro.labeling.registry import get_scheme
from repro.server import RemoteStore, ServerThread
from repro.server import protocol as wire
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.database import initialize_schema, iter_value_chunks
from repro.storage.pushdown import (
    module_branch_sql,
    range_branch_sql,
    scheme_supports_pushdown,
)
from repro.storage.schema import SCHEMA_VERSION
from repro.storage.sharded import ShardedProvenanceStore
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size

PUSHDOWN_INDEXES = (
    "idx_run_labels_pushdown_range",
    "idx_run_labels_pushdown_module",
)


def forest_spec(name: str = "pushdown-forest", n_modules: int = 14, seed: int = 5):
    """A forest specification (the interval scheme only labels forests)."""
    return generate_specification(
        SyntheticSpecConfig(
            n_modules=n_modules,
            n_edges=n_modules - 1,
            hierarchy_size=4,
            hierarchy_depth=2,
            name=name,
            seed=seed,
        )
    )


@pytest.fixture(scope="module")
def spec():
    return forest_spec()


@pytest.fixture(scope="module")
def labeled_runs(spec):
    labeler = SkeletonLabeler(spec, "interval")
    return [
        labeler.label_run(
            generate_run_with_size(spec, 60, seed=index, name=f"run-{index}").run
        )
        for index in range(3)
    ]


@pytest.fixture()
def store(tmp_path, labeled_runs):
    with ProvenanceStore(tmp_path / "pushdown.db") as opened:
        for item in labeled_runs:
            opened.add_labeled_run(item)
        yield opened


def _index_names(database) -> set[str]:
    connection = sqlite3.connect(database)
    try:
        return {
            row[1] for row in connection.execute("PRAGMA index_list(run_labels)")
        }
    finally:
        connection.close()


def _schema_version(database) -> str:
    connection = sqlite3.connect(database)
    try:
        (value,) = connection.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        return value
    finally:
        connection.close()


def _downgrade_to_v2(database) -> None:
    """Rewind a freshly written store file to the v2 on-disk layout."""
    connection = sqlite3.connect(database)
    try:
        with connection:
            for name in PUSHDOWN_INDEXES:
                connection.execute(f"DROP INDEX {name}")
            connection.execute(
                "UPDATE meta SET value = '2' WHERE key = 'schema_version'"
            )
    finally:
        connection.close()


class TestSchemaV3Migration:
    def test_v2_single_file_store_migrates_in_place(self, tmp_path, labeled_runs, spec):
        database = tmp_path / "legacy.db"
        with ProvenanceStore(database) as writer:
            run_ids = [writer.add_labeled_run(item) for item in labeled_runs]
        _downgrade_to_v2(database)
        assert not _index_names(database) & set(PUSHDOWN_INDEXES)
        assert _schema_version(database) == "2"

        # reopening migrates; a second reopen must be a no-op (idempotent)
        for _ in range(2):
            with ProvenanceStore(database) as reopened:
                anchor = labeled_runs[0].run.vertices()[0]
                session = ProvenanceSession(reopened)
                sql = session.run(
                    DownstreamQuery(anchor, run_id=run_ids[0], pushdown="always")
                )
                kernel = session.run(
                    DownstreamQuery(anchor, run_id=run_ids[0], pushdown="never")
                )
                assert sql == kernel
            assert set(PUSHDOWN_INDEXES) <= _index_names(database)
            assert _schema_version(database) == str(SCHEMA_VERSION)

    def test_v2_sharded_store_migrates_every_shard(self, tmp_path, labeled_runs, spec):
        base = tmp_path / "legacy-sharded"
        with ShardedProvenanceStore(base, 2) as writer:
            writer.add_labeled_runs(labeled_runs)
        shard_files = sorted(base.glob("shard-*.db"))
        assert len(shard_files) == 2
        for shard in shard_files:
            _downgrade_to_v2(shard)
            assert _schema_version(shard) == "2"

        for _ in range(2):  # idempotent across a double-open
            with ShardedProvenanceStore(base, 2) as reopened:
                anchor_vertex = labeled_runs[0].run.vertices()[0]
                anchor = (anchor_vertex.module, anchor_vertex.instance)
                session = ProvenanceSession(reopened)
                sql = session.run(CrossRunQuery(spec.name, anchor, pushdown="always"))
                kernel = session.run(CrossRunQuery(spec.name, anchor, pushdown="never"))
                assert sql.per_run == kernel.per_run
                assert sql.skipped_runs == kernel.skipped_runs
            for shard in shard_files:
                assert set(PUSHDOWN_INDEXES) <= _index_names(shard)
                assert _schema_version(shard) == str(SCHEMA_VERSION)


class TestChunkBudget:
    def test_999_values_fit_one_chunk_and_1000_split(self, monkeypatch):
        # the helper caps at SQLite's 999-parameter budget even when the
        # configured chunk size is far larger
        monkeypatch.setattr(database_module, "LABEL_FETCH_CHUNK", 2_000)
        chunks = [chunk for chunk, _ in iter_value_chunks(range(999))]
        assert [len(chunk) for chunk in chunks] == [999]
        chunks = [chunk for chunk, _ in iter_value_chunks(range(1_000))]
        assert [len(chunk) for chunk in chunks] == [999, 1]

    def test_reserved_parameters_shrink_the_chunk(self, monkeypatch):
        monkeypatch.setattr(database_module, "LABEL_FETCH_CHUNK", 2_000)
        sizes = [
            len(chunk) for chunk, _ in iter_value_chunks(range(1_000), reserved=2)
        ]
        assert sizes == [997, 3]
        for chunk, placeholders in iter_value_chunks(range(1_000), reserved=2):
            assert placeholders.count("?") == len(chunk)
            assert len(chunk) + 2 <= database_module.SQLITE_MAX_VARIABLE_NUMBER

    def test_thousand_id_in_query_succeeds_under_the_cap(self, monkeypatch):
        monkeypatch.setattr(database_module, "LABEL_FETCH_CHUNK", 2_000)
        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE t (x INTEGER PRIMARY KEY)")
        connection.executemany(
            "INSERT INTO t VALUES (?)", [(value,) for value in range(1_000)]
        )
        collected: list[int] = []
        for chunk, placeholders in iter_value_chunks(range(1_000), reserved=2):
            rows = connection.execute(
                f"SELECT x FROM t WHERE x IN ({placeholders}) AND ? = ?",
                (*chunk, 1, 1),
            ).fetchall()
            collected.extend(row[0] for row in rows)
        assert sorted(collected) == list(range(1_000))


class TestCapabilityFlags:
    def test_range_labeled_schemes_declare_pushdown(self):
        for name in ("interval", "tree-cover", "chain"):
            assert scheme_supports_pushdown(name), name
        for name in ("tcm", "bfs", "dfs", "2-hop"):
            assert not scheme_supports_pushdown(name), name

    def test_capabilities_of_surfaces_the_flag(self):
        assert capabilities_of(get_scheme("interval")).pushdown is True
        assert capabilities_of(get_scheme("tcm")).pushdown is False


class TestSingleRunPlanner:
    def test_always_equals_never_both_directions(self, store, labeled_runs):
        session = ProvenanceSession(store)
        for run_id, item in zip((1, 2, 3), labeled_runs):
            for vertex in item.run.vertices()[:8]:
                for query_type in (DownstreamQuery, UpstreamQuery):
                    sql = session.run(
                        query_type(vertex, run_id=run_id, pushdown="always")
                    )
                    kernel = session.run(
                        query_type(vertex, run_id=run_id, pushdown="never")
                    )
                    assert sql == kernel

    def test_always_on_incapable_scheme_raises(self, tmp_path, spec):
        other = forest_spec(name="pushdown-tcm", seed=6)
        labeler = SkeletonLabeler(other, "tcm")
        labeled = labeler.label_run(
            generate_run_with_size(other, 40, seed=0, name="tcm-run").run
        )
        with ProvenanceStore(tmp_path / "tcm.db") as opened:
            run_id = opened.add_labeled_run(labeled)
            session = ProvenanceSession(opened)
            anchor = labeled.run.vertices()[0]
            with pytest.raises(QueryPlanError, match="pushdown"):
                session.run(DownstreamQuery(anchor, run_id=run_id, pushdown="always"))
            # auto quietly keeps the kernel path instead
            session.run(DownstreamQuery(anchor, run_id=run_id, pushdown="auto"))
            paths = opened.cache_stats()["pushdown"]
            assert paths["kernel"].get("tcm", 0) >= 1
            assert not paths["sql"]

    def test_auto_keeps_kernel_below_the_size_floor(self, store, labeled_runs):
        # 60-vertex runs sit far below PUSHDOWN_MIN_ROWS
        session = ProvenanceSession(store)
        anchor = labeled_runs[0].run.vertices()[0]
        session.run(DownstreamQuery(anchor, run_id=1))
        paths = store.cache_stats()["pushdown"]
        assert paths["kernel"].get("interval", 0) >= 1
        session.run(DownstreamQuery(anchor, run_id=1, pushdown="always"))
        assert store.cache_stats()["pushdown"]["sql"].get("interval", 0) >= 1

    def test_query_override_beats_session_default(self, store, labeled_runs):
        session = ProvenanceSession(store, pushdown="never")
        assert session.cache_stats()["pushdown_mode"] == "never"
        anchor = labeled_runs[0].run.vertices()[0]
        session.run(DownstreamQuery(anchor, run_id=1, pushdown="always"))
        assert store.cache_stats()["pushdown"]["sql"].get("interval", 0) >= 1

    def test_invalid_modes_are_rejected(self, store):
        with pytest.raises(QueryPlanError, match="pushdown"):
            DownstreamQuery(("a", 1), run_id=1, pushdown="sometimes")
        with pytest.raises(QueryPlanError, match="pushdown"):
            ProvenanceSession(store, pushdown="sometimes")

    def test_unknown_anchor_raises_on_the_pushdown_path(self, store):
        session = ProvenanceSession(store)
        with pytest.raises(StorageError):
            session.run(DownstreamQuery(("ghost", 1), run_id=1, pushdown="always"))


class TestCrossRunPlanner:
    def test_always_equals_never_across_runs(self, store, spec, labeled_runs):
        session = ProvenanceSession(store)
        for vertex in labeled_runs[0].run.vertices()[:6]:
            anchor = (vertex.module, vertex.instance)
            for direction in ("downstream", "upstream"):
                sql = session.run(
                    CrossRunQuery(spec.name, anchor, direction, pushdown="always")
                )
                kernel = session.run(
                    CrossRunQuery(spec.name, anchor, direction, pushdown="never")
                )
                assert sql.per_run == kernel.per_run
                assert sorted(sql.skipped_runs) == sorted(kernel.skipped_runs)

    def test_anchor_missing_everywhere_skips_all_runs(self, store, spec, labeled_runs):
        session = ProvenanceSession(store)
        anchor = (labeled_runs[0].run.vertices()[0].module, 999)
        sql = session.run(CrossRunQuery(spec.name, anchor, pushdown="always"))
        kernel = session.run(CrossRunQuery(spec.name, anchor, pushdown="never"))
        assert sql.per_run == {} == kernel.per_run
        assert sorted(sql.skipped_runs) == sorted(kernel.skipped_runs)
        assert len(sql.skipped_runs) == 3

    def test_sharded_store_answers_identically(self, tmp_path, spec, labeled_runs):
        with ShardedProvenanceStore(tmp_path / "sharded", 3) as sharded:
            sharded.add_labeled_runs(labeled_runs)
            session = ProvenanceSession(sharded)
            vertex = labeled_runs[0].run.vertices()[0]
            anchor = (vertex.module, vertex.instance)
            sql = session.run(CrossRunQuery(spec.name, anchor, pushdown="always"))
            kernel = session.run(CrossRunQuery(spec.name, anchor, pushdown="never"))
            assert sql.per_run == kernel.per_run
            assert sql.skipped_runs == kernel.skipped_runs
            paths = sharded.cache_stats()["pushdown"]
            assert paths["sql"].get("interval", 0) >= 1
            assert paths["kernel"].get("interval", 0) >= 1

    def test_always_on_incapable_spec_raises(self, tmp_path):
        other = forest_spec(name="pushdown-cross-tcm", seed=7)
        labeler = SkeletonLabeler(other, "tcm")
        with ProvenanceStore(tmp_path / "tcm.db") as opened:
            opened.add_labeled_run(
                labeler.label_run(
                    generate_run_with_size(other, 40, seed=0, name="tcm-run").run
                )
            )
            session = ProvenanceSession(opened)
            with pytest.raises(QueryPlanError, match="tcm"):
                session.run(CrossRunQuery(other.name, ("m0000", 1), pushdown="always"))


class TestExplainQueryPlan:
    @pytest.fixture()
    def connection(self):
        connection = database_module.connect(":memory:")
        initialize_schema(connection)
        yield connection
        connection.close()

    @pytest.mark.parametrize(
        "sql, params, expected_index",
        [
            (
                range_branch_sql(3, downstream=True),
                (1, 2, 3, "m", 1),
                "idx_run_labels_pushdown_range",
            ),
            (
                range_branch_sql(3, downstream=False),
                (1, 2, 3, "m", 1),
                "idx_run_labels_pushdown_range",
            ),
            (
                module_branch_sql(3, 5),
                (1, 2, 3, "m", 1, "a", "b", "c", "d", "e"),
                "idx_run_labels_pushdown_module",
            ),
        ],
    )
    def test_branches_ride_the_v3_indexes(self, connection, sql, params, expected_index):
        details = [
            row[3]
            for row in connection.execute("EXPLAIN QUERY PLAN " + sql, params)
        ]
        # every access path is an index search — a SCAN would mean SQLite
        # fell back to walking the table and the pushdown lost its point
        assert details and all(detail.startswith("SEARCH") for detail in details)
        assert any(expected_index in detail for detail in details)
        # the anchor seek rides the primary-key autoindex
        assert any("sqlite_autoindex_run_labels_1" in detail for detail in details)


class TestWireProtocol:
    def test_protocol_version_covers_pushdown_and_faults(self):
        # v2 added the pushdown byte; v3 the fault-tolerance handshake
        # (HELLO client id, ingest sequence tokens, the HEALTH op); v4 the
        # routing maintenance ops (REBALANCE/REPLICATE/ROUTING + skew)
        assert wire.PROTOCOL_VERSION == 4

    @pytest.mark.parametrize("mode", [None, "auto", "always", "never"])
    def test_pushdown_mode_round_trips(self, mode):
        writer = wire.Writer()
        wire.put_pushdown(writer, mode)
        assert wire.read_pushdown(wire.Reader(writer.getvalue())) == mode

    def test_unknown_mode_and_byte_are_protocol_errors(self):
        with pytest.raises(ProtocolError):
            wire.put_pushdown(wire.Writer(), "sometimes")
        with pytest.raises(ProtocolError):
            wire.read_pushdown(wire.Reader(b"\x09"))


class TestRemotePushdown:
    @pytest.fixture()
    def served(self, tmp_path, spec, labeled_runs):
        store = ShardedProvenanceStore(tmp_path / "served", 2)
        run_ids = store.add_labeled_runs(labeled_runs)
        with ServerThread(store) as server:
            with RemoteStore(server.url) as client:
                yield store, run_ids, client

    def test_remote_sweep_agrees_with_local_for_every_mode(
        self, served, spec, labeled_runs
    ):
        store, run_ids, client = served
        local = ProvenanceSession(store)
        remote = client.session()
        anchor = labeled_runs[0].run.vertices()[0]
        for mode in (None, "auto", "always", "never"):
            query = DownstreamQuery(anchor, run_id=run_ids[0], pushdown=mode)
            assert remote.run(query) == local.run(query)
            sweep = CrossRunQuery(
                spec.name, (anchor.module, anchor.instance), pushdown=mode
            )
            assert remote.run(sweep).per_run == local.run(sweep).per_run

    def test_remote_pushdown_counters_flow_through_stats(
        self, served, spec, labeled_runs
    ):
        _, _, client = served
        vertex = labeled_runs[0].run.vertices()[0]
        client.session().run(
            CrossRunQuery(spec.name, (vertex.module, vertex.instance), pushdown="always")
        )
        stats = client.cache_stats()
        assert stats["pushdown"]["sql"].get("interval", 0) >= 1


class TestCLIPushdownFlag:
    @pytest.fixture()
    def database(self, tmp_path, labeled_runs):
        path = tmp_path / "cli.db"
        with ProvenanceStore(path) as opened:
            for item in labeled_runs:
                opened.add_labeled_run(item)
        return path

    def test_sweep_pushdown_modes_print_identical_answers(
        self, database, spec, labeled_runs, capsys
    ):
        import re

        vertex = labeled_runs[0].run.vertices()[0]
        outputs = {}
        for mode in ("always", "never"):
            exit_code = main([
                "sweep", "--database", str(database),
                "--spec", spec.name,
                "--source", f"{vertex.module}:{vertex.instance}",
                "--pushdown", mode,
            ])
            assert exit_code == 0
            # the summary line carries a wall-clock figure; everything else
            # (every per-run result line) must be byte-identical
            outputs[mode] = re.sub(
                r"in \d+\.\d+ ms", "in <t> ms", capsys.readouterr().out
            )
        assert outputs["always"] == outputs["never"]

    def test_unknown_pushdown_mode_is_a_usage_error(self, database, spec, capsys):
        with pytest.raises(SystemExit):
            main([
                "sweep", "--database", str(database),
                "--spec", spec.name, "--source", "m0000:1",
                "--pushdown", "sometimes",
            ])
