"""Property-based equivalence of the sharded store with the single-file store.

The contract of the sharded layout is total transparency: a
:class:`~repro.storage.sharded.ShardedProvenanceStore` built from the same
labeled runs as a single-file :class:`~repro.storage.store.ProvenanceStore`
must answer **every** query type bit-identically — point, batch,
downstream/upstream sweeps, cross-run sweeps and cross-run batches, in
sequential, thread-pool and process-pool execution alike.  Run ids differ
between the layouts by construction (the sharded store encodes the owning
shard into the id), so answers are compared run-for-run in insertion
order.
"""

from __future__ import annotations

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.api import (
    BatchQuery,
    CrossRunBatchQuery,
    CrossRunQuery,
    DownstreamQuery,
    PointQuery,
    ProvenanceSession,
    UpstreamQuery,
)
from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.engine.parallel import CrossRunExecutor
from repro.exceptions import DatasetError
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.sharded import ShardedProvenanceStore
from repro.storage.store import ProvenanceStore

FEW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)


@st.composite
def sharded_workload(draw):
    """A random spec set, labeled runs of each, and a shard count."""
    from repro.workflow.execution import generate_run_with_size

    spec_count = draw(st.integers(min_value=1, max_value=3))
    shards = draw(st.integers(min_value=1, max_value=5))
    scheme = draw(st.sampled_from(("tcm", "tree-cover", "bfs")))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    specs = []
    for index in range(spec_count):
        hierarchy_size = draw(st.integers(min_value=1, max_value=4))
        if hierarchy_size == 1:
            depth = 1
        else:
            depth = draw(st.integers(min_value=2, max_value=min(3, hierarchy_size)))
        n_modules = draw(st.integers(min_value=10, max_value=20))
        extra_edges = draw(st.integers(min_value=0, max_value=n_modules // 2))
        config = SyntheticSpecConfig(
            n_modules=n_modules,
            n_edges=n_modules - 1 + extra_edges,
            hierarchy_size=hierarchy_size,
            hierarchy_depth=depth,
            seed=seed + index,
            name=f"sharded-hypo-{seed}-{index}",
        )
        try:
            specs.append(generate_specification(config))
        except DatasetError:
            assume(False)
    runs_per_spec = draw(st.integers(min_value=1, max_value=3))
    labeled = []
    for spec in specs:
        labeler = SkeletonLabeler(spec, scheme)
        for run_index in range(runs_per_spec):
            if spec.hierarchy.size == 1:
                # flat specs (no forks/loops) cannot grow past their size
                target = spec.vertex_count
            else:
                target = draw(
                    st.integers(
                        min_value=spec.vertex_count,
                        max_value=max(40, spec.vertex_count),
                    )
                )
            generated = generate_run_with_size(
                spec, target, seed=seed + run_index, name=f"run-{run_index}"
            )
            labeled.append(labeler.label_run(generated.run))
    return specs, labeled, shards


@given(workload=sharded_workload(), mode=st.sampled_from(("thread", "process")))
@FEW
def test_every_query_type_is_bit_identical_across_layouts(
    workload, mode, tmp_path_factory
):
    specs, labeled, shards = workload
    base = tmp_path_factory.mktemp("sharded-hypo")
    with ProvenanceStore(base / "single.db") as single, ShardedProvenanceStore(
        base / "sharded", shards
    ) as sharded:
        single_ids = [single.add_labeled_run(item) for item in labeled]
        sharded_ids = sharded.add_labeled_runs(labeled)
        assert len(single_ids) == len(sharded_ids)
        single_session = ProvenanceSession(single)
        sharded_session = ProvenanceSession(sharded)

        # per-run queries: labels, points, batches, anchored sweeps
        for item, run_s, run_h in zip(labeled, single_ids, sharded_ids):
            assert single.all_labels_of(run_s) == sharded.all_labels_of(run_h)
            executions = item.run.vertices()[:6]
            pairs = [(u, v) for u in executions for v in executions]
            assert single_session.run(
                BatchQuery(pairs=pairs, run_id=run_s)
            ) == sharded_session.run(BatchQuery(pairs=pairs, run_id=run_h))
            u, v = executions[0], executions[-1]
            assert single_session.run(
                PointQuery(u, v, run_id=run_s)
            ) == sharded_session.run(PointQuery(u, v, run_id=run_h))
            anchor = executions[0]
            assert single_session.run(
                DownstreamQuery(anchor, run_id=run_s)
            ) == sharded_session.run(DownstreamQuery(anchor, run_id=run_h))
            assert single_session.run(
                UpstreamQuery(anchor, run_id=run_s)
            ) == sharded_session.run(UpstreamQuery(anchor, run_id=run_h))

        # cross-run queries, sequential vs pooled, single-file vs sharded
        for spec in specs:
            spec_runs = [
                item for item in labeled if item.run.specification.name == spec.name
            ]
            anchor_vertex = spec_runs[0].run.vertices()[0]
            anchor = (anchor_vertex.module, anchor_vertex.instance)
            baseline = CrossRunExecutor(single, workers=1).sweep(spec.name, anchor)
            for store in (single, sharded):
                per_run, skipped = CrossRunExecutor(
                    store, workers=2, mode=mode
                ).sweep(spec.name, anchor)
                base_per_run, base_skipped = baseline
                assert list(per_run.values()) == list(base_per_run.values())
                assert len(skipped) == len(base_skipped)
            query_pairs = [(anchor, anchor)]
            executions = spec_runs[0].run.vertices()
            if len(executions) > 1:
                other = executions[-1]
                query_pairs.append((anchor, (other.module, other.instance)))
            single_batch = single_session.run(
                CrossRunBatchQuery(spec.name, query_pairs, workers=2)
            )
            sharded_batch = sharded_session.run(
                CrossRunBatchQuery(spec.name, query_pairs, workers=2)
            )
            assert list(single_batch.per_run.values()) == list(
                sharded_batch.per_run.values()
            )
            assert len(single_batch.skipped_runs) == len(sharded_batch.skipped_runs)
            single_sweep = single_session.run(
                CrossRunQuery(spec.name, anchor, workers=1)
            )
            sharded_sweep = sharded_session.run(
                CrossRunQuery(spec.name, anchor, workers=2)
            )
            assert list(single_sweep.per_run.values()) == list(
                sharded_sweep.per_run.values()
            )
