"""Unit tests for self-contained subgraph resolution (forks and loops)."""

from __future__ import annotations

import pytest

from repro.exceptions import SpecificationError
from repro.graphs.digraph import DiGraph
from repro.workflow.subgraphs import (
    Region,
    RegionKind,
    is_atomic_fork,
    is_complete_loop,
    is_self_contained,
    resolve_fork,
    resolve_loop,
)


@pytest.fixture()
def paper_graph() -> DiGraph:
    """The Figure 2 specification graph."""
    return DiGraph(
        edges=[
            ("a", "b"), ("b", "c"), ("c", "h"),
            ("a", "d"), ("d", "e"), ("e", "f"), ("f", "g"), ("g", "h"),
        ]
    )


class TestRegion:
    def test_region_requires_vertices(self):
        with pytest.raises(SpecificationError):
            Region(RegionKind.FORK, "F1", frozenset())

    def test_region_kind_predicates(self):
        fork = Region(RegionKind.FORK, "F1", frozenset({"b"}))
        loop = Region(RegionKind.LOOP, "L1", frozenset({"b", "c"}))
        assert fork.is_fork and not fork.is_loop
        assert loop.is_loop and not loop.is_fork

    def test_region_vertices_coerced_to_frozenset(self):
        region = Region(RegionKind.FORK, "F1", {"b", "c"})
        assert isinstance(region.vertices, frozenset)


class TestResolveFork:
    def test_fork_f1(self, paper_graph: DiGraph):
        resolved = resolve_fork(paper_graph, Region(RegionKind.FORK, "F1", {"b", "c"}))
        assert resolved.source == "a"
        assert resolved.sink == "h"
        assert resolved.internal == {"b", "c"}
        assert resolved.dom_set == {"b", "c"}
        assert resolved.edges == {("a", "b"), ("b", "c"), ("c", "h")}

    def test_fork_f2(self, paper_graph: DiGraph):
        resolved = resolve_fork(paper_graph, Region(RegionKind.FORK, "F2", {"f"}))
        assert resolved.source == "e"
        assert resolved.sink == "g"
        assert resolved.span == {"e", "f", "g"}

    def test_fork_excludes_direct_edge(self):
        graph = DiGraph(edges=[("s", "x"), ("x", "t"), ("s", "t")])
        resolved = resolve_fork(graph, Region(RegionKind.FORK, "F", {"x"}))
        assert ("s", "t") not in resolved.edges

    def test_fork_to_region_round_trip(self, paper_graph: DiGraph):
        resolved = resolve_fork(paper_graph, Region(RegionKind.FORK, "F1", {"b", "c"}))
        assert resolved.to_region().vertices == frozenset({"b", "c"})

    def test_fork_with_two_outside_predecessors_rejected(self):
        graph = DiGraph(edges=[("s", "x"), ("p", "x"), ("x", "t"), ("s", "p"), ("p", "t")])
        with pytest.raises(SpecificationError):
            resolve_fork(graph, Region(RegionKind.FORK, "F", {"x"}))

    def test_fork_not_atomic_rejected(self):
        # two parallel internal branches between the same terminals
        graph = DiGraph(edges=[("s", "x"), ("s", "y"), ("x", "t"), ("y", "t")])
        with pytest.raises(SpecificationError):
            resolve_fork(graph, Region(RegionKind.FORK, "F", {"x", "y"}))

    def test_fork_unknown_vertex_rejected(self, paper_graph: DiGraph):
        with pytest.raises(SpecificationError):
            resolve_fork(paper_graph, Region(RegionKind.FORK, "F", {"zzz"}))

    def test_fork_wrong_kind_rejected(self, paper_graph: DiGraph):
        with pytest.raises(SpecificationError):
            resolve_fork(paper_graph, Region(RegionKind.LOOP, "L", {"b", "c"}))

    def test_fork_source_equals_sink_rejected(self):
        # single outside neighbour on both sides
        graph = DiGraph(edges=[("s", "x"), ("x", "y"), ("y", "s2"), ("s2", "z"), ("z", "t")])
        # internals {x, y} have outside pred s and outside succ s2 (fine);
        # internals {z} has outside pred s2 and outside succ t (fine);
        # but internals {x, y, z} has two outside preds -> rejected
        with pytest.raises(SpecificationError):
            resolve_fork(graph, Region(RegionKind.FORK, "F", {"x", "y", "z"}))


class TestResolveLoop:
    def test_loop_l2(self, paper_graph: DiGraph):
        resolved = resolve_loop(paper_graph, Region(RegionKind.LOOP, "L2", {"b", "c"}))
        assert resolved.source == "b"
        assert resolved.sink == "c"
        assert resolved.dom_set == {"b", "c"}
        assert resolved.edges == {("b", "c")}

    def test_loop_l1(self, paper_graph: DiGraph):
        resolved = resolve_loop(paper_graph, Region(RegionKind.LOOP, "L1", {"e", "f", "g"}))
        assert resolved.source == "e"
        assert resolved.sink == "g"
        assert resolved.internal == {"f"}

    def test_loop_needs_two_vertices(self, paper_graph: DiGraph):
        with pytest.raises(SpecificationError):
            resolve_loop(paper_graph, Region(RegionKind.LOOP, "L", {"b"}))

    def test_loop_not_complete_rejected(self):
        # the source has an outgoing edge that leaves the candidate span
        graph = DiGraph(edges=[("s", "x"), ("x", "y"), ("x", "z"), ("y", "t"), ("z", "t")])
        with pytest.raises(SpecificationError):
            resolve_loop(graph, Region(RegionKind.LOOP, "L", {"x", "y"}))

    def test_loop_not_self_contained_rejected(self):
        # internal vertex y also feeds t directly outside the span
        graph = DiGraph(edges=[("s", "x"), ("x", "y"), ("y", "z"), ("z", "t"), ("y", "t")])
        with pytest.raises(SpecificationError):
            resolve_loop(graph, Region(RegionKind.LOOP, "L", {"x", "y", "z"}))

    def test_loop_two_sources_rejected(self):
        graph = DiGraph(edges=[("s", "x"), ("s", "y"), ("x", "z"), ("y", "z"), ("z", "t")])
        with pytest.raises(SpecificationError):
            resolve_loop(graph, Region(RegionKind.LOOP, "L", {"x", "y", "z"}))

    def test_loop_wrong_kind_rejected(self, paper_graph: DiGraph):
        with pytest.raises(SpecificationError):
            resolve_loop(paper_graph, Region(RegionKind.FORK, "F", {"b", "c"}))

    def test_loop_including_direct_edge(self):
        graph = DiGraph(edges=[("s", "x"), ("x", "y"), ("x", "z"), ("z", "y"), ("y", "t")])
        resolved = resolve_loop(graph, Region(RegionKind.LOOP, "L", {"x", "y", "z"}))
        assert ("x", "y") in resolved.edges
        assert resolved.source == "x"
        assert resolved.sink == "y"


class TestPredicates:
    def test_is_self_contained_true(self, paper_graph: DiGraph):
        assert is_self_contained(paper_graph, frozenset({"b", "c"}), "b", "c")

    def test_is_self_contained_false_when_internal_leaks(self, paper_graph: DiGraph):
        # f is internal to the candidate span {d, e, f, h} but connects to g outside it
        assert not is_self_contained(paper_graph, frozenset({"d", "e", "f", "h"}), "d", "h")

    def test_is_self_contained_source_must_differ_from_sink(self, paper_graph: DiGraph):
        assert not is_self_contained(paper_graph, frozenset({"b"}), "b", "b")

    def test_is_atomic_fork(self, paper_graph: DiGraph):
        assert is_atomic_fork(paper_graph, frozenset({"b", "c"}))
        assert not is_atomic_fork(paper_graph, frozenset({"b", "e"}))

    def test_is_complete_loop(self, paper_graph: DiGraph):
        assert is_complete_loop(paper_graph, frozenset({"e", "f", "g"}))
        # {a, b} is not complete: its source a also feeds d outside the span
        assert not is_complete_loop(paper_graph, frozenset({"a", "b"}))
