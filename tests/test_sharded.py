"""Tests for the sharded provenance store and its parallel ingest service.

Covers routing and global-id allocation, the full ``ProvenanceStore``
surface parity through the session, the per-shard batched write path
(including input-order ids, duplicate detection and reopen), concurrent
writer/reader stress, shard-aware parallel execution, the CLI ``--shards``
flag, and the persistent worker pool's lifecycle.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import (
    BatchQuery,
    CrossRunBatchQuery,
    CrossRunQuery,
    DataDependencyQuery,
    DownstreamQuery,
    PointQuery,
    ProvenanceSession,
    UpstreamQuery,
)
from repro.engine.parallel import CrossRunExecutor
from repro.exceptions import StorageError
from repro.provenance.data import DataFlow
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.sharded import (
    DEFAULT_SHARDS,
    MAX_SHARDS,
    ShardedProvenanceStore,
    open_store,
    shard_of_run,
    shard_of_spec,
)
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size
from repro.workflow.run import RunVertex


@pytest.fixture()
def sharded_store(tmp_path):
    store = ShardedProvenanceStore(tmp_path / "sharded", 4)
    yield store
    store.close()


@pytest.fixture()
def labeled_batch(paper_spec, paper_labeler, paper_run):
    """The paper run plus three generated runs, all labeled with tcm+skl."""
    labeled = [paper_labeler.label_run(paper_run)]
    for seed in (1, 2, 3):
        generated = generate_run_with_size(
            paper_spec, 20, seed=seed, name=f"shard-{seed}"
        )
        labeled.append(paper_labeler.label_run(generated.run))
    return labeled


class TestRouting:
    def test_spec_routing_is_stable(self):
        assert shard_of_spec("paper-example", 4) == shard_of_spec("paper-example", 4)
        assert 0 <= shard_of_spec("anything", 7) < 7

    def test_run_id_encoding_round_trips(self):
        # global id (local-1)*N + shard + 1 means the shard is recoverable
        # from the id alone, for every shard count
        for shards in (1, 2, 4, 64):
            for local in range(1, 6):
                for shard in range(shards):
                    global_id = (local - 1) * shards + shard + 1
                    assert shard_of_run(global_id, shards) == shard

    def test_one_shard_store_uses_single_file_numbering(self, tmp_path, labeled_batch):
        with ShardedProvenanceStore(tmp_path / "one", 1) as store:
            ids = store.add_labeled_runs(labeled_batch)
        assert ids == [1, 2, 3, 4]

    def test_all_runs_of_one_spec_share_a_shard(self, sharded_store, labeled_batch):
        ids = sharded_store.add_labeled_runs(labeled_batch)
        shard_paths = {sharded_store.shard_path_of(run_id) for run_id in ids}
        assert len(shard_paths) == 1

    def test_specs_spread_across_shards(self, tmp_path):
        # enough distinct names hit more than one of 4 shards
        shards = {shard_of_spec(f"spec-{i}", 4) for i in range(16)}
        assert len(shards) > 1


class TestConstruction:
    def test_memory_store_rejected(self):
        with pytest.raises(StorageError):
            ShardedProvenanceStore(":memory:")

    def test_shard_count_validated(self, tmp_path):
        with pytest.raises(StorageError):
            ShardedProvenanceStore(tmp_path / "bad", 0)
        with pytest.raises(StorageError):
            ShardedProvenanceStore(tmp_path / "bad", MAX_SHARDS + 1)

    def test_default_shard_count(self, tmp_path):
        with ShardedProvenanceStore(tmp_path / "default") as store:
            assert store.shard_count == DEFAULT_SHARDS

    def test_reopen_recovers_shard_count(self, tmp_path, labeled_batch):
        with ShardedProvenanceStore(tmp_path / "reopen", 3) as store:
            ids = store.add_labeled_runs(labeled_batch)
        with ShardedProvenanceStore(tmp_path / "reopen") as store:
            assert store.shard_count == 3
            assert [row["run_id"] for row in store.list_runs()] == sorted(ids)
        with pytest.raises(StorageError):
            ShardedProvenanceStore(tmp_path / "reopen", 5)

    def test_open_store_picks_the_layout(self, tmp_path, labeled_batch):
        sharded_path = tmp_path / "auto"
        with open_store(sharded_path, shards=2) as store:
            assert isinstance(store, ShardedProvenanceStore)
            store.add_labeled_runs(labeled_batch)
        with open_store(sharded_path) as store:
            assert isinstance(store, ShardedProvenanceStore)
            assert store.shard_count == 2
        with open_store(tmp_path / "plain.db") as store:
            assert isinstance(store, ProvenanceStore)


class TestIngest:
    def test_ids_in_input_order(self, sharded_store, labeled_batch):
        ids = sharded_store.add_labeled_runs(labeled_batch)
        assert len(ids) == len(labeled_batch)
        names = {row["run_id"]: row["name"] for row in sharded_store.list_runs()}
        assert [names[run_id] for run_id in ids] == [
            item.run.name for item in labeled_batch
        ]

    def test_empty_batch(self, sharded_store):
        assert sharded_store.add_labeled_runs([]) == []

    def test_duplicate_run_raises(self, sharded_store, labeled_batch):
        sharded_store.add_labeled_runs(labeled_batch)
        with pytest.raises(StorageError):
            sharded_store.add_labeled_run(labeled_batch[0])

    def test_failed_shard_batch_rolls_back(self, sharded_store, labeled_batch):
        sharded_store.add_labeled_run(labeled_batch[0])
        before = sharded_store.statistics()
        # the whole sub-batch shares one transaction: the fresh runs in it
        # must roll back alongside the duplicate
        with pytest.raises(StorageError):
            sharded_store.add_labeled_runs(labeled_batch)
        assert sharded_store.statistics() == before

    def test_multi_spec_batch_spreads_and_answers(self, tmp_path):
        from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification

        specs = [
            generate_specification(
                SyntheticSpecConfig(
                    n_modules=20,
                    n_edges=30,
                    hierarchy_size=3,
                    hierarchy_depth=2,
                    name=f"multi-{i}",
                    seed=20 + i,
                )
            )
            for i in range(6)
        ]
        labeled = [
            SkeletonLabeler(spec, "tcm").label_run(
                generate_run_with_size(spec, 25, seed=i, name="r").run
            )
            for i, spec in enumerate(specs)
        ]
        with ShardedProvenanceStore(tmp_path / "multi", 4) as store:
            ids = store.add_labeled_runs(labeled)
            touched = {store.shard_path_of(run_id) for run_id in ids}
            assert len(touched) > 1, "expected the specs to spread over shards"
            # the ingest pool was exercised (multi-shard batches fan out)
            assert store.pool_stats()["thread"]["tasks_submitted"] >= 2
            for run_id, item in zip(ids, labeled):
                assert store.all_labels_of(run_id) == item.labels()

    def test_add_specification_idempotent(self, sharded_store, paper_spec):
        first = sharded_store.add_specification(paper_spec)
        assert sharded_store.add_specification(paper_spec) == first
        assert sharded_store.get_specification(paper_spec.name).name == paper_spec.name


class TestSurfaceParity:
    """Every query type answers exactly like a single-file store."""

    @pytest.fixture()
    def both_stores(self, tmp_path, labeled_batch):
        single = ProvenanceStore(tmp_path / "single.db")
        sharded = ShardedProvenanceStore(tmp_path / "parity", 4)
        single_ids = [single.add_labeled_run(item) for item in labeled_batch]
        sharded_ids = sharded.add_labeled_runs(labeled_batch)
        yield single, single_ids, sharded, sharded_ids
        single.close()
        sharded.close()

    def test_labels_and_point_batch_sweeps(self, both_stores, paper_run):
        single, single_ids, sharded, sharded_ids = both_stores
        vertices = paper_run.vertices()[:6]
        pairs = [(u, v) for u in vertices for v in vertices]
        single_session = ProvenanceSession(single)
        sharded_session = ProvenanceSession(sharded)
        run_s, run_h = single_ids[0], sharded_ids[0]
        assert single.all_labels_of(run_s) == sharded.all_labels_of(run_h)
        assert single.label_of(run_s, "a", 1) == sharded.label_of(run_h, "a", 1)
        assert single_session.run(
            BatchQuery(pairs=pairs, run_id=run_s)
        ) == sharded_session.run(BatchQuery(pairs=pairs, run_id=run_h))
        for u, v in pairs[:8]:
            assert single_session.run(
                PointQuery(u, v, run_id=run_s)
            ) == sharded_session.run(PointQuery(u, v, run_id=run_h))
        assert single_session.run(
            DownstreamQuery(("a", 1), run_id=run_s)
        ) == sharded_session.run(DownstreamQuery(("a", 1), run_id=run_h))
        assert single_session.run(
            UpstreamQuery(("h", 1), run_id=run_s)
        ) == sharded_session.run(UpstreamQuery(("h", 1), run_id=run_h))

    def test_cross_run_queries_match(self, both_stores, paper_spec):
        single, _, sharded, _ = both_stores
        for workers in (1, 2):
            single_sweep = ProvenanceSession(single).run(
                CrossRunQuery(paper_spec.name, ("a", 1), workers=workers)
            )
            sharded_sweep = ProvenanceSession(sharded).run(
                CrossRunQuery(paper_spec.name, ("a", 1), workers=workers)
            )
            assert list(single_sweep.per_run.values()) == list(
                sharded_sweep.per_run.values()
            )
            pairs = [(("a", 1), ("h", 1)), (("h", 1), ("a", 1))]
            single_batch = ProvenanceSession(single).run(
                CrossRunBatchQuery(paper_spec.name, pairs, workers=workers)
            )
            sharded_batch = ProvenanceSession(sharded).run(
                CrossRunBatchQuery(paper_spec.name, pairs, workers=workers)
            )
            assert list(single_batch.per_run.values()) == list(
                sharded_batch.per_run.values()
            )

    def test_deprecated_shims_delegate(self, both_stores):
        _, _, sharded, sharded_ids = both_stores
        run_id = sharded_ids[0]
        with pytest.deprecated_call():
            assert sharded.reaches(run_id, ("a", 1), ("h", 1)) is True
        with pytest.deprecated_call():
            assert sharded.reaches_batch(run_id, [(("a", 1), ("h", 1))]) == [True]
        with pytest.deprecated_call():
            downstream = sharded.downstream_of(run_id, ("a", 1))
        with pytest.deprecated_call():
            upstream = sharded.upstream_of(run_id, ("h", 1))
        assert downstream and upstream

    def test_deprecated_shim_warns_at_the_callers_line(self, both_stores):
        import warnings

        _, _, sharded, sharded_ids = both_stores
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sharded.reaches(sharded_ids[0], ("a", 1), ("h", 1))
        shims = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(shims) == 1
        # the warning must point at THIS file, not at the shim internals,
        # so `-W error::DeprecationWarning` reports the user's own line
        assert shims[0].filename == __file__

    def test_close_is_idempotent(self, tmp_path):
        store = ShardedProvenanceStore(tmp_path / "close-twice", 2)
        assert not store.closed
        store.close()
        store.close()
        assert store.closed

    def test_operations_after_close_raise_cleanly(self, tmp_path, labeled_batch):
        store = ShardedProvenanceStore(tmp_path / "closed-ops", 2)
        store.add_labeled_runs(labeled_batch[:1])
        store.close()
        for operation in (
            lambda: store.add_labeled_runs(labeled_batch[1:]),
            lambda: store.add_labeled_run(labeled_batch[1]),
            lambda: store.list_runs(),
            lambda: store.statistics(),
            lambda: store.session(),
        ):
            with pytest.raises(StorageError, match="store is closed"):
                operation()

    def test_dataflow_queries(self, both_stores, paper_run):
        _, _, sharded, sharded_ids = both_stores
        run_id = sharded_ids[0]
        flow = DataFlow(paper_run)
        flow.attach(RunVertex("a", 1), RunVertex("b", 1), ["item-a"])
        # item-a is read by b1, which reaches c1 — the producer of item-b
        flow.attach(RunVertex("c", 1), RunVertex("b", 2), ["item-b"])
        assert sharded.add_dataflow(run_id, flow) == 2
        assert sharded.list_data_items(run_id) == ["item-a", "item-b"]
        session = ProvenanceSession(sharded)
        assert session.run(
            DataDependencyQuery("item-b", on_item="item-a", run_id=run_id)
        )
        assert session.run(
            DataDependencyQuery("item-b", on_module=("a", 1), run_id=run_id)
        )

    def test_get_run_and_delete(self, both_stores):
        _, _, sharded, sharded_ids = both_stores
        run_id = sharded_ids[1]
        assert sharded.get_run(run_id).vertex_count > 0
        sharded.delete_run(run_id)
        with pytest.raises(StorageError):
            sharded.get_run(run_id)
        remaining = {row["run_id"] for row in sharded.list_runs()}
        assert run_id not in remaining and len(remaining) == len(sharded_ids) - 1

    def test_unknown_run_and_spec_errors(self, sharded_store):
        with pytest.raises(StorageError):
            sharded_store.get_run(999)
        with pytest.raises(StorageError):
            sharded_store.get_specification("ghost")
        with pytest.raises(StorageError):
            sharded_store.run_label_arrays(999)


class TestCacheStatsAndSession:
    def test_cache_stats_aggregates(self, sharded_store, labeled_batch):
        ids = sharded_store.add_labeled_runs(labeled_batch)
        session = sharded_store.session()
        assert session is sharded_store.session()
        session.run(BatchQuery(pairs=[(("a", 1), ("h", 1))] * 600, run_id=ids[0]))
        stats = session.cache_stats()
        assert stats["target_kind"] == "store"
        assert stats["shards"]["count"] == 4
        assert len(stats["shards"]["per_shard"]) == 4
        assert stats["engines_cached"] >= 1
        assert stats["limit"] > 0

    def test_point_query_promotion_on_sharded_store(
        self, sharded_store, labeled_batch
    ):
        ids = sharded_store.add_labeled_runs(labeled_batch)
        session = ProvenanceSession(sharded_store, promote_after=2)
        query = PointQuery(("a", 1), ("h", 1), run_id=ids[0])
        for _ in range(4):
            assert session.run(query) is True
        stats = session.cache_stats()
        assert stats["promoted_runs"] == [ids[0]]

    def test_run_label_arrays_many_across_shards(self, tmp_path):
        from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification

        specs = [
            generate_specification(
                SyntheticSpecConfig(
                    n_modules=15,
                    n_edges=20,
                    hierarchy_size=2,
                    hierarchy_depth=2,
                    name=f"arrays-{i}",
                    seed=40 + i,
                )
            )
            for i in range(4)
        ]
        labeled = [
            SkeletonLabeler(spec, "tcm").label_run(
                generate_run_with_size(spec, 18, seed=i, name="r").run
            )
            for i, spec in enumerate(specs)
        ]
        with ShardedProvenanceStore(tmp_path / "arrays", 3) as store:
            ids = store.add_labeled_runs(labeled)
            arrays = store.run_label_arrays_many(ids)
            assert sorted(arrays) == sorted(ids)
            for run_id in ids:
                single = store.run_label_arrays(run_id)
                assert arrays[run_id].executions == single.executions
                assert list(arrays[run_id].q1) == list(single.q1)


class TestConcurrentWritersAndReaders:
    def test_ingest_while_sweeping(self, tmp_path, paper_spec, paper_labeler):
        """Writers batching runs in while readers sweep must never trip.

        WAL shards keep readers unblocked during commits; the final state
        must contain every run exactly once and answer like a cold store.
        """
        store = ShardedProvenanceStore(tmp_path / "stress", 4)
        seed_run = generate_run_with_size(paper_spec, 20, seed=99, name="seed")
        store.add_labeled_run(paper_labeler.label_run(seed_run.run))
        batches = [
            [
                paper_labeler.label_run(
                    generate_run_with_size(
                        paper_spec, 20, seed=batch * 10 + offset,
                        name=f"stress-{batch}-{offset}",
                    ).run
                )
                for offset in range(3)
            ]
            for batch in range(4)
        ]
        errors: list[BaseException] = []
        ingested: list[int] = []

        def writer():
            try:
                for batch in batches:
                    ingested.extend(store.add_labeled_runs(batch))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            # each reader holds its own store handle (the connection-per-
            # worker pattern of a query server); WAL lets it read while
            # the writer's shard batches commit
            try:
                with ShardedProvenanceStore(tmp_path / "stress") as reader_store:
                    executor = CrossRunExecutor(reader_store, workers=2)
                    for _ in range(12):
                        per_run, _ = executor.sweep(paper_spec.name, ("a", 1))
                        assert per_run, "the seed run must always be visible"
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        total_runs = 1 + sum(len(batch) for batch in batches)
        assert len(set(ingested)) == total_runs - 1
        assert store.statistics()["runs"] == total_runs
        # a cold reopen agrees with what the hot store ingested
        store.close()
        with ShardedProvenanceStore(tmp_path / "stress") as reopened:
            assert reopened.statistics()["runs"] == total_runs
            per_run, skipped = CrossRunExecutor(reopened, workers=1).sweep(
                paper_spec.name, ("a", 1)
            )
            assert len(per_run) + len(skipped) == total_runs


class TestShardedCLI:
    def _base_files(self, tmp_path):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        run_path = tmp_path / "run.json"
        assert main([
            "generate-spec", "--modules", "30", "--edges", "60", "--regions", "5",
            "--depth", "3", "--seed", "4", "--output", str(spec_path),
        ]) == 0
        assert main([
            "generate-run", "--spec", str(spec_path), "--size", "60",
            "--seed", "1", "--output", str(run_path),
        ]) == 0
        return spec_path, run_path

    def test_label_with_shards_then_query_and_sweep(self, tmp_path, capsys):
        import json

        from repro.cli import main

        spec_path, run_path = self._base_files(tmp_path)
        database = tmp_path / "prov"
        assert main([
            "label", "--spec", str(spec_path), "--run", str(run_path),
            "--database", str(database), "--shards", "3",
        ]) == 0
        output = capsys.readouterr().out
        assert "of 3" in output and "run_id=" in output
        run_id = output.split("run_id=")[1].split()[0]
        assert sorted(p.name for p in database.glob("shard-*.db")) == [
            "shard-00.db", "shard-01.db", "shard-02.db",
        ]
        vertices = json.loads(run_path.read_text())["vertices"]
        source = f"{vertices[0][0]}:{vertices[0][1]}"
        # a second label call auto-detects the sharded layout (no --shards)
        run2_path = tmp_path / "run2.json"
        assert main([
            "generate-run", "--spec", str(spec_path), "--size", "60",
            "--seed", "2", "--name", "run2", "--output", str(run2_path),
        ]) == 0
        assert main([
            "label", "--spec", str(spec_path), "--run", str(run2_path),
            "--database", str(database),
        ]) == 0
        capsys.readouterr()
        exit_code = main([
            "query", "--database", str(database), "--run-id", run_id,
            "--source", source, "--target", source,
        ])
        assert exit_code in (0, 1)  # a valid answer either way
        capsys.readouterr()
        assert main([
            "sweep", "--database", str(database), "--spec", "synthetic",
            "--source", source, "--summary-only", "--workers", "2",
        ]) == 0
        assert "swept 2 runs" in capsys.readouterr().out

    def test_label_shard_count_mismatch_errors(self, tmp_path, capsys):
        from repro.cli import main

        spec_path, run_path = self._base_files(tmp_path)
        database = tmp_path / "prov"
        assert main([
            "label", "--spec", str(spec_path), "--run", str(run_path),
            "--database", str(database), "--shards", "2",
        ]) == 0
        capsys.readouterr()
        run2_path = tmp_path / "run2.json"
        assert main([
            "generate-run", "--spec", str(spec_path), "--size", "40",
            "--seed", "3", "--name", "other", "--output", str(run2_path),
        ]) == 0
        assert main([
            "label", "--spec", str(spec_path), "--run", str(run2_path),
            "--database", str(database), "--shards", "5",
        ]) == 2
        assert "2 shards" in capsys.readouterr().err


class TestReviewRegressions:
    """Fixes from review: id reuse, file-path errors, duplicate messages."""

    def test_deleted_max_id_is_never_reused(self, sharded_store, labeled_batch):
        ids = sharded_store.add_labeled_runs(labeled_batch[:3])
        newest = max(ids)
        sharded_store.delete_run(newest)
        replacement = sharded_store.add_labeled_run(labeled_batch[3])
        assert replacement > newest, "a deleted id must never be handed out again"

    def test_sharding_over_a_file_path_raises_storage_error(
        self, tmp_path, labeled_batch
    ):
        single_path = tmp_path / "prov.db"
        with ProvenanceStore(single_path) as store:
            store.add_labeled_run(labeled_batch[0])
        with pytest.raises(StorageError, match="file, not a shard directory"):
            ShardedProvenanceStore(single_path, 4)

    def test_duplicate_error_names_the_offending_run(self, tmp_path, labeled_batch):
        with ShardedProvenanceStore(tmp_path / "dup", 2) as store:
            store.add_labeled_run(labeled_batch[2])
            with pytest.raises(StorageError, match="'shard-2'"):
                store.add_labeled_runs(labeled_batch)

    def test_explicit_worker_cap_bounds_pool_tasks(
        self, tmp_path, paper_spec, paper_labeler
    ):
        store = ShardedProvenanceStore(tmp_path / "cap", 1)
        runs = [
            paper_labeler.label_run(
                generate_run_with_size(paper_spec, 18, seed=s, name=f"cap-{s}").run
            )
            for s in range(12)
        ]
        store.add_labeled_runs(runs)
        executor = CrossRunExecutor(store, workers=2, mode="thread")
        sequential = CrossRunExecutor(store, workers=1).sweep(paper_spec.name, ("a", 1))
        pool = store.worker_pool("thread")
        before = pool.tasks_submitted
        assert executor.sweep(paper_spec.name, ("a", 1)) == sequential
        # 12 runs at workers=2 over the 8-wide shared pool: at most 2 tasks
        assert pool.tasks_submitted - before <= 2
        store.close()

    def test_open_store_refuses_unrelated_directories(self, tmp_path):
        plain_dir = tmp_path / "not-a-store"
        plain_dir.mkdir()
        (plain_dir / "notes.txt").write_text("hello")
        with pytest.raises(StorageError, match="without shard files"):
            open_store(plain_dir)
        assert sorted(p.name for p in plain_dir.iterdir()) == ["notes.txt"]
