"""Tests for online (incremental) skeleton labeling of a growing run."""

from __future__ import annotations

import pytest

from repro.exceptions import LabelingError, RunConformanceError
from repro.graphs.traversal import all_pairs_reachability
from repro.skeleton.online import OnlineRun
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.run import RunVertex


def replay_figure3(online: OnlineRun, *, stop_after: int | None = None):
    """Replay the Figure 3 run as an event stream; returns recorded vertices.

    Events are emitted in an order a real engine could produce (every
    execution after its inputs).  ``stop_after`` truncates the stream after
    that many module-execution events, leaving a valid prefix.
    """
    vertices: dict[str, RunVertex] = {}
    budget = [stop_after if stop_after is not None else 10**9]

    def execute(scope, module):
        if budget[0] <= 0:
            raise StopIteration
        budget[0] -= 1
        vertex = scope.execute(module)
        vertices[str(vertex)] = vertex
        return vertex

    root = online.root_scope
    try:
        a1 = execute(root, "a")
        d1 = execute(root, "d")
        online.connect(a1, d1)

        # fork F1, first copy: loop L2 executed twice
        f1 = root.begin_execution("F1")
        f1_copy1 = f1.new_copy()
        l2_first = f1_copy1.begin_execution("L2")
        l2_c1 = l2_first.new_copy()
        b1 = execute(l2_c1, "b")
        online.connect(a1, b1)
        c1 = execute(l2_c1, "c")
        online.connect(b1, c1)
        l2_c2 = l2_first.new_copy()
        b2 = execute(l2_c2, "b")
        online.connect(c1, b2)
        c2 = execute(l2_c2, "c")
        online.connect(b2, c2)

        # fork F1, second copy: loop L2 executed once
        f1_copy2 = f1.new_copy()
        l2_second = f1_copy2.begin_execution("L2")
        l2_c3 = l2_second.new_copy()
        b3 = execute(l2_c3, "b")
        online.connect(a1, b3)
        c3 = execute(l2_c3, "c")
        online.connect(b3, c3)

        # loop L1 executed twice; F2 once then twice
        l1 = root.begin_execution("L1")
        l1_c1 = l1.new_copy()
        e1 = execute(l1_c1, "e")
        online.connect(d1, e1)
        f2_first = l1_c1.begin_execution("F2")
        f2_c1 = f2_first.new_copy()
        fv1 = execute(f2_c1, "f")
        online.connect(e1, fv1)
        g1 = execute(l1_c1, "g")
        online.connect(fv1, g1)

        l1_c2 = l1.new_copy()
        e2 = execute(l1_c2, "e")
        online.connect(g1, e2)
        f2_second = l1_c2.begin_execution("F2")
        f2_c2 = f2_second.new_copy()
        fv2 = execute(f2_c2, "f")
        online.connect(e2, fv2)
        f2_c3 = f2_second.new_copy()
        fv3 = execute(f2_c3, "f")
        online.connect(e2, fv3)
        g2 = execute(l1_c2, "g")
        online.connect(fv2, g2)
        online.connect(fv3, g2)

        h1 = execute(root, "h")
        online.connect(c2, h1)
        online.connect(c3, h1)
        online.connect(g2, h1)
    except StopIteration:
        pass
    return vertices


class TestEventReplay:
    def test_full_replay_matches_figure3(self, paper_spec, paper_run):
        online = OnlineRun(paper_spec, name="figure-3")
        replay_figure3(online)
        assert online.vertex_count == paper_run.vertex_count
        assert online.edge_count == paper_run.edge_count
        assert set(online.graph.iter_edges()) == set(paper_run.graph.iter_edges())

    def test_finalize_cross_checks_against_reconstruction(self, paper_spec):
        online = OnlineRun(paper_spec, name="figure-3")
        replay_figure3(online)
        labeled = online.finalize()
        assert labeled.run.vertex_count == 16
        assert labeled.plan.copies_per_region() == {"F1": 2, "L2": 3, "L1": 2, "F2": 3}

    def test_final_answers_match_batch_labeling(self, paper_spec, paper_run, paper_labeled_run):
        online = OnlineRun(SkeletonLabeler(paper_spec, "tcm"), name="figure-3")
        replay_figure3(online)
        labeled = online.finalize()
        for source in paper_run.vertices():
            for target in paper_run.vertices():
                assert labeled.reaches(source, target) == paper_labeled_run.reaches(
                    source, target
                )

    def test_queries_available_mid_run(self, paper_spec):
        online = OnlineRun(paper_spec)
        replay_figure3(online, stop_after=8)
        # the prefix contains a1, d1, b1, c1, b2, c2, b3, c3 but not h1
        assert online.vertex_count == 8
        assert online.reaches(RunVertex("a", 1), RunVertex("c", 2))
        assert online.reaches(RunVertex("c", 1), RunVertex("b", 2))
        assert not online.reaches(RunVertex("b", 1), RunVertex("c", 3))
        with pytest.raises(LabelingError):
            online.reaches(RunVertex("a", 1), RunVertex("h", 1))

    @pytest.mark.parametrize("prefix_length", [2, 5, 8, 11, 16])
    def test_prefix_answers_equal_final_answers(self, paper_spec, paper_labeled_run, prefix_length):
        online = OnlineRun(paper_spec)
        vertices = replay_figure3(online, stop_after=prefix_length)
        snapshot = online.snapshot()
        reach = all_pairs_reachability(snapshot.run.graph)
        for source in vertices.values():
            for target in vertices.values():
                expected_final = paper_labeled_run.reaches(source, target)
                assert online.reaches(source, target) == expected_final
                assert snapshot.reaches(source, target) == expected_final
                assert (target in reach[source]) == expected_final

    def test_snapshot_is_independent_of_later_events(self, paper_spec):
        online = OnlineRun(paper_spec)
        replay_figure3(online, stop_after=4)
        snapshot = online.snapshot()
        before = snapshot.run.vertex_count
        replay_figure3(OnlineRun(paper_spec))  # unrelated; keep linters quiet
        online.root_scope.execute("h")
        assert snapshot.run.vertex_count == before

    def test_relabeling_is_lazy(self, paper_spec):
        online = OnlineRun(paper_spec)
        replay_figure3(online)
        assert online.relabel_count == 0
        online.reaches(RunVertex("a", 1), RunVertex("h", 1))
        online.reaches(RunVertex("b", 1), RunVertex("c", 3))
        assert online.relabel_count == 1  # one encoding served both queries
        online.root_scope.execute("h", instance=99)
        online.reaches(RunVertex("a", 1), RunVertex("h", 99))
        assert online.relabel_count == 2


class TestEventValidation:
    def test_unknown_module_rejected(self, paper_spec):
        online = OnlineRun(paper_spec)
        with pytest.raises(RunConformanceError):
            online.root_scope.execute("zzz")

    def test_module_in_wrong_scope_rejected(self, paper_spec):
        online = OnlineRun(paper_spec)
        with pytest.raises(RunConformanceError):
            online.root_scope.execute("b")  # b lives inside L2, not at top level

    def test_unknown_region_rejected(self, paper_spec):
        online = OnlineRun(paper_spec)
        with pytest.raises(RunConformanceError):
            online.root_scope.begin_execution("F9")

    def test_region_in_wrong_scope_rejected(self, paper_spec):
        online = OnlineRun(paper_spec)
        with pytest.raises(RunConformanceError):
            online.root_scope.begin_execution("L2")  # L2 is nested inside F1

    def test_duplicate_group_rejected(self, paper_spec):
        online = OnlineRun(paper_spec)
        online.root_scope.begin_execution("F1")
        with pytest.raises(RunConformanceError):
            online.root_scope.begin_execution("F1")

    def test_duplicate_execution_rejected(self, paper_spec):
        online = OnlineRun(paper_spec)
        online.root_scope.execute("a", instance=1)
        with pytest.raises(RunConformanceError):
            online.root_scope.execute("a", instance=1)

    def test_edge_to_unknown_vertex_rejected(self, paper_spec):
        online = OnlineRun(paper_spec)
        a1 = online.root_scope.execute("a")
        with pytest.raises(RunConformanceError):
            online.connect(a1, RunVertex("d", 1))

    def test_non_spec_edge_rejected(self, paper_spec):
        online = OnlineRun(paper_spec)
        a1 = online.root_scope.execute("a")
        h1 = online.root_scope.execute("h")
        with pytest.raises(RunConformanceError):
            online.connect(a1, h1)  # (a, h) is not a specification edge

    def test_edge_validation_can_be_disabled(self, paper_spec):
        online = OnlineRun(paper_spec, validate_edges=False)
        a1 = online.root_scope.execute("a")
        h1 = online.root_scope.execute("h")
        online.connect(a1, h1)
        assert online.edge_count == 1

    def test_loop_back_edges_allowed(self, paper_spec):
        online = OnlineRun(paper_spec)
        replay_figure3(online)
        # the replay already added (c1 -> b2) and (g1 -> e2) loop-back edges
        assert online.graph.has_edge(RunVertex("c", 1), RunVertex("b", 2))
        assert online.graph.has_edge(RunVertex("g", 1), RunVertex("e", 2))

    def test_label_of_unknown_vertex_rejected(self, paper_spec):
        online = OnlineRun(paper_spec)
        with pytest.raises(LabelingError):
            online.label_of(RunVertex("a", 1))

    def test_finalize_requires_complete_run(self, paper_spec):
        online = OnlineRun(paper_spec)
        replay_figure3(online, stop_after=8)
        with pytest.raises(Exception):
            online.finalize()


class TestOnlineDataProvenance:
    """Data items become queryable the moment they are produced (Section 9)."""

    def test_data_dependencies_mid_run(self, paper_spec):
        online = OnlineRun(paper_spec)
        replay_figure3(online, stop_after=8)
        online.attach_data(RunVertex("a", 1), RunVertex("b", 1), ["x1", "x2"])
        online.attach_data(RunVertex("a", 1), RunVertex("b", 3), ["x1", "x3"])
        online.attach_data(RunVertex("b", 1), RunVertex("c", 1), ["x4"])
        online.attach_data(RunVertex("b", 3), RunVertex("c", 3), ["x6"])

        assert sorted(online.data_items()) == ["x1", "x2", "x3", "x4", "x6"]
        assert online.data_depends_on_data("x4", "x1")       # via b1
        assert online.data_depends_on_data("x6", "x1")       # via b3
        assert not online.data_depends_on_data("x6", "x2")   # parallel fork copies
        assert online.data_depends_on_module("x6", RunVertex("a", 1))
        assert not online.data_depends_on_module("x6", RunVertex("b", 1))

    def test_data_on_missing_edge_rejected(self, paper_spec):
        online = OnlineRun(paper_spec)
        replay_figure3(online, stop_after=4)
        with pytest.raises(RunConformanceError):
            online.attach_data(RunVertex("a", 1), RunVertex("c", 1), ["x9"])

    def test_single_writer_enforced(self, paper_spec):
        online = OnlineRun(paper_spec)
        replay_figure3(online, stop_after=8)
        online.attach_data(RunVertex("a", 1), RunVertex("b", 1), ["shared"])
        with pytest.raises(RunConformanceError):
            online.attach_data(RunVertex("b", 1), RunVertex("c", 1), ["shared"])

    def test_unknown_item_rejected(self, paper_spec):
        online = OnlineRun(paper_spec)
        replay_figure3(online, stop_after=4)
        with pytest.raises(RunConformanceError):
            online.data_depends_on_data("ghost", "ghost2")

    def test_multiple_readers_allowed(self, paper_spec):
        online = OnlineRun(paper_spec)
        replay_figure3(online)
        online.attach_data(RunVertex("a", 1), RunVertex("b", 1), ["x1"])
        online.attach_data(RunVertex("a", 1), RunVertex("b", 3), ["x1"])
        online.attach_data(RunVertex("c", 3), RunVertex("h", 1), ["x8"])
        assert online.data_depends_on_data("x8", "x1")


class TestOnlineOnSyntheticSpec:
    def test_replayed_generated_run_matches_batch(self, synthetic_spec, rng):
        """Replay a generated run's plan as events; answers must match batch SKL."""
        from repro.workflow.execution import generate_run
        from repro.workflow.execution import RangeProfile
        from repro.workflow.plan import PlanNodeKind

        generated = generate_run(synthetic_spec, RangeProfile(1, 2), seed=5)
        labeler = SkeletonLabeler(synthetic_spec, "tcm")
        batch = labeler.label_run(
            generated.run, plan=generated.plan, context=generated.context
        )

        online = OnlineRun(labeler, validate_edges=False, name="replayed")
        scope_of_plan_node = {generated.plan.root_id: online.root_scope}

        # replay the plan structure (groups and copies) in preorder
        for node in generated.plan.iter_preorder():
            if node.node_id == generated.plan.root_id:
                continue
            if node.is_minus:
                parent_scope = scope_of_plan_node[node.parent]
                scope_of_plan_node[node.node_id] = parent_scope.begin_execution(node.region)
            else:
                group = scope_of_plan_node[node.parent]
                scope_of_plan_node[node.node_id] = group.new_copy()

        # replay executions with the generator's instance numbers, then edges
        for vertex, plan_node in generated.context.items():
            scope = scope_of_plan_node[plan_node]
            scope.execute(vertex.module, instance=vertex.instance)
        for tail, head in generated.run.graph.iter_edges():
            online.connect(tail, head)

        labeled = online.finalize()
        vertices = generated.run.vertices()
        for _ in range(300):
            source, target = rng.choice(vertices), rng.choice(vertices)
            assert labeled.reaches(source, target) == batch.reaches(source, target)
            assert online.reaches(source, target) == batch.reaches(source, target)


class TestIncrementalOnlineKernel:
    """The append-maintained batch kernel (repro.engine.online.OnlineKernel)."""

    def test_appends_into_nonempty_scopes_extend_in_place(self, paper_spec):
        from repro.engine.online import OnlineKernel

        online = OnlineRun(paper_spec)
        root = online.root_scope
        a1 = root.execute("a")
        kernel = OnlineKernel(online)
        assert kernel.stats.rebuilds == 1
        # the root scope is nonempty now: further root executions extend
        d1 = root.execute("d")
        assert kernel.reaches(a1, d1) == online.reaches(a1, d1)
        assert kernel.stats.rebuilds == 1
        assert kernel.stats.extensions == 1
        assert kernel.stats.appended_rows == 1

    def test_newly_nonempty_scope_triggers_rebuild(self, paper_spec):
        from repro.engine.online import OnlineKernel

        online = OnlineRun(paper_spec)
        root = online.root_scope
        a1 = root.execute("a")
        d1 = root.execute("d")
        kernel = OnlineKernel(online)
        rebuilds = kernel.stats.rebuilds
        # a fresh loop copy is a new + node: its first execution can move
        # every existing label, so the arrays must recompile
        e1 = root.begin_execution("L1").new_copy().execute("e")
        assert kernel.reaches(a1, e1) == online.reaches(a1, e1)
        assert kernel.stats.rebuilds == rebuilds + 1

    def test_empty_plan_growth_is_absorbed_free(self, paper_spec):
        from repro.engine.online import OnlineKernel

        online = OnlineRun(paper_spec)
        root = online.root_scope
        a1 = root.execute("a")
        d1 = root.execute("d")
        kernel = OnlineKernel(online)
        rebuilds = kernel.stats.rebuilds
        # a group with no copies (and a copy with no executions) moves no
        # positions: the kernel absorbs it without rebuild or extension
        root.begin_execution("L1").new_copy()
        assert kernel.reaches(a1, d1) == online.reaches(a1, d1)
        assert kernel.stats.rebuilds == rebuilds
        assert kernel.stats.extensions == 0

    def test_append_invalidates_only_the_hot_pair_lru(self, paper_spec):
        from repro.engine.online import OnlineKernel

        online = OnlineRun(paper_spec)
        root = online.root_scope
        a1 = root.execute("a")
        d1 = root.execute("d")
        kernel = OnlineKernel(online)
        assert kernel.reaches(a1, d1) == kernel.reaches(a1, d1)
        assert kernel.stats.cache_hits == 1
        assert kernel.cache_stats()["hot_pairs_cached"] == 1
        root.execute("a")
        kernel.sync()
        assert kernel.cache_stats()["hot_pairs_cached"] == 0  # LRU invalidated
        assert kernel.stats.rebuilds == 1  # arrays kept

    def test_handles_stay_valid_across_appends(self, paper_spec):
        from repro.engine.online import OnlineKernel

        online = OnlineRun(paper_spec)
        root = online.root_scope
        a1 = root.execute("a")
        d1 = root.execute("d")
        kernel = OnlineKernel(online)
        source_ids, target_ids = kernel.intern_pairs([(a1, d1)])
        before = [bool(x) for x in kernel.reaches_many_ids(source_ids, target_ids)]
        root.execute("d")  # append: unlike per-rebuild engines, ids survive
        after = [bool(x) for x in kernel.reaches_many_ids(source_ids, target_ids)]
        assert before == after == [online.reaches(a1, d1)]

    def test_batch_and_sweep_match_oracle_across_structure(self, paper_spec):
        from repro.engine.online import OnlineKernel

        online = OnlineRun(paper_spec)
        root = online.root_scope
        recorded = [root.execute("a"), root.execute("d")]
        kernel = OnlineKernel(online)
        l1 = root.begin_execution("L1")
        for _ in range(2):
            copy = l1.new_copy()
            recorded.append(copy.execute("e"))
            f2 = copy.begin_execution("F2")
            recorded.append(f2.new_copy().execute("f"))
            recorded.append(copy.execute("g"))
            pairs = [(u, v) for u in recorded for v in recorded]
            answers = kernel.reaches_batch(pairs)
            assert [bool(x) for x in answers] == [
                online.reaches(u, v) for u, v in pairs
            ]
            anchor = recorded[0]
            down = kernel.dependency_sweep(anchor, downstream=True)
            assert sorted(down) == sorted(
                v for v in recorded if v != anchor and online.reaches(anchor, v)
            )
            up = kernel.dependency_sweep(recorded[-1], downstream=False)
            assert sorted(up) == sorted(
                v
                for v in recorded
                if v != recorded[-1] and online.reaches(v, recorded[-1])
            )

    def test_unknown_execution_raises(self, paper_spec):
        from repro.engine.online import OnlineKernel

        online = OnlineRun(paper_spec)
        online.root_scope.execute("a")
        kernel = OnlineKernel(online)
        with pytest.raises(LabelingError):
            kernel.reaches(RunVertex("a", 1), RunVertex("ghost", 1))
        with pytest.raises(LabelingError):
            kernel.intern(RunVertex("b", 7))
        with pytest.raises(LabelingError):
            kernel.reaches_many_ids([0], [99])

    def test_capacity_growth_under_append_burst(self, paper_spec):
        from repro.engine.online import OnlineKernel

        online = OnlineRun(paper_spec)
        root = online.root_scope
        first = root.execute("a")
        kernel = OnlineKernel(online)
        appended = [root.execute("a") for _ in range(50)]
        for vertex in appended[-5:]:
            assert kernel.reaches(first, vertex) == online.reaches(first, vertex)
        assert kernel.stats.rebuilds == 1
        assert kernel.stats.appended_rows == 50


class TestAppendLog:
    """The O(appended) append log behind OnlineKernel.sync."""

    def test_log_records_every_execution_in_event_order(self, paper_spec):
        online = OnlineRun(paper_spec)
        root = online.root_scope
        a1 = root.execute("a")
        d1 = root.execute("d")
        log = online.appended_executions()
        assert [vertex for vertex, _ in log] == [a1, d1]
        assert [node for _, node in log] == [
            online.context[a1], online.context[d1],
        ]
        # suffix reads return exactly the missing tail
        assert online.appended_executions(1) == [log[1]]
        assert online.appended_executions(2) == []

    def test_log_tracks_scope_node_ids(self, paper_spec):
        online = OnlineRun(paper_spec)
        root = online.root_scope
        root.execute("a")
        fork_copy = root.begin_execution("F1").new_copy()
        loop_copy = fork_copy.begin_execution("L2").new_copy()
        b1 = loop_copy.execute("b")
        (vertex, node_id) = online.appended_executions(1)[0]
        assert vertex == b1 and node_id == loop_copy.node_id

    def test_negative_since_rejected(self, paper_spec):
        online = OnlineRun(paper_spec)
        with pytest.raises(ValueError):
            online.appended_executions(-1)

    def test_log_stays_in_lockstep_with_context(self, paper_spec):
        online = OnlineRun(paper_spec)
        replay_figure3(online)
        log = online.appended_executions()
        assert len(log) == len(online.context)
        assert [vertex for vertex, _ in log] == list(online.context)
        assert {vertex: node for vertex, node in log} == online.context

    def test_kernel_sync_consumes_only_the_suffix(self, paper_spec, monkeypatch):
        from repro.engine.online import OnlineKernel

        online = OnlineRun(paper_spec)
        root = online.root_scope
        first = root.execute("a")
        kernel = OnlineKernel(online)
        kernel.sync()
        requested: list[int] = []
        original = online.appended_executions

        def probed(since=0):
            requested.append(since)
            return original(since)

        monkeypatch.setattr(online, "appended_executions", probed)
        appended = [root.execute("a") for _ in range(5)]
        assert kernel.reaches(first, appended[-1])
        # one sync, asked for exactly the suffix past the folded prefix
        assert requested == [1]
        root.execute("a")
        kernel.sync()
        assert requested == [1, 6]
        assert kernel.stats.appended_rows == 6
