"""Thin setup.py shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that editable installs work on offline machines whose setuptools/pip stack
predates PEP 660 (no ``wheel`` package available).
"""

from setuptools import setup

setup()
